//! Vendored offline stand-in for the subset of [`proptest`] this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the property tests
//! run on this minimal, deterministic re-implementation: range and tuple
//! strategies, `collection::vec`, the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros, and `ProptestConfig` case
//! counts (`PROPTEST_CASES` env override honored).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   generated inputs; cases are derived deterministically from the test
//!   name, so a failure reproduces exactly by re-running the test.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * Only the strategy combinators the workspace uses are provided.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-imported API surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(..)]` header and any number of
/// `fn name(arg in strategy, ..) { body }` items (each carrying its own
/// attributes, e.g. `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::name_seed(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` for property-test bodies: fails the case instead of panicking
/// directly so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property-test bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -2.0f64..2.0, k in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((0.0..=1.0).contains(&k));
        }

        #[test]
        fn vec_lengths_respect_size(xs in crate::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..10, 0usize..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert!(pair.0 != pair.1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng(crate::test_runner::name_seed("t"), 3);
        let mut b = crate::test_runner::case_rng(crate::test_runner::name_seed("t"), 3);
        let s = 0u64..1000;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
