//! Deterministic fault injection for socket streams.
//!
//! [`FaultStream`] wraps any `Read`/`Write` transport and perturbs a
//! seeded fraction of operations with one of three faults:
//!
//! * **delay** — sleep a bounded, seeded duration before the operation;
//! * **partial** — serve at most one byte, forcing the caller to loop
//!   (legal per the `Read`/`Write` contracts, but a liveness trap for
//!   code that assumes full transfers);
//! * **drop** — fail the operation with `ConnectionReset` and leave the
//!   stream permanently broken, as if the peer vanished mid-request.
//!
//! The *schedule* is deterministic: which operation index gets which
//! fault follows only from the seed ([`FaultPlan::stream_seed`] gives
//! every wrapped stream its own derived sequence). What those operations
//! carry still depends on timing — socket reads return whatever bytes
//! have arrived — so runs are reproducible in fault mix and rate, not in
//! byte-for-byte interleaving.
//!
//! Both sides of `oc-serve` use the wrapper: the server wraps accepted
//! connections when [`crate::config::ServeConfig::faults`] is set, the
//! `oc-client` crate wraps its own sockets for `loadgen --chaos` and the
//! chaos smoke tests. Injected counts are shared through
//! [`FaultCounters`] and surface in `STATS` as `faults=`.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;

/// Which faults a [`FaultPlan`] may inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKinds {
    /// Sleep before the operation.
    pub delays: bool,
    /// Serve at most one byte per operation.
    pub partials: bool,
    /// Kill the stream with `ConnectionReset`.
    pub drops: bool,
}

impl Default for FaultKinds {
    fn default() -> Self {
        FaultKinds {
            delays: true,
            partials: true,
            drops: true,
        }
    }
}

/// A seeded fault-injection schedule.
///
/// # Examples
///
/// ```
/// use oc_serve::fault::FaultPlan;
///
/// let plan = FaultPlan::new(42, 0.05); // ~5% of operations faulted
/// plan.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Root seed; every wrapped stream derives its own sub-seed.
    pub seed: u64,
    /// Probability in `[0, 1]` that one read/write call is faulted.
    pub rate: f64,
    /// Upper bound on one injected delay.
    pub max_delay: Duration,
    /// The fault mix.
    pub kinds: FaultKinds,
}

impl FaultPlan {
    /// A plan injecting all three fault kinds at `rate`, with delays up
    /// to 2 ms.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            max_delay: Duration::from_millis(2),
            kinds: FaultKinds::default(),
        }
    }

    /// Restricts the fault mix.
    pub fn with_kinds(mut self, kinds: FaultKinds) -> FaultPlan {
        self.kinds = kinds;
        self
    }

    /// Sets the upper bound on one injected delay.
    pub fn with_max_delay(mut self, d: Duration) -> FaultPlan {
        self.max_delay = d;
        self
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `rate` is not a probability or
    /// no fault kind is enabled.
    pub fn validate(&self) -> Result<(), ServeError> {
        if !self.rate.is_finite() || !(0.0..=1.0).contains(&self.rate) {
            return Err(ServeError::Config(format!(
                "fault rate {} must be in [0, 1]",
                self.rate
            )));
        }
        if !(self.kinds.delays || self.kinds.partials || self.kinds.drops) {
            return Err(ServeError::Config(
                "fault plan must enable at least one fault kind".into(),
            ));
        }
        Ok(())
    }

    /// Derives the seed for one wrapped stream: `salt` distinguishes
    /// streams (connection id, read vs. write half, reconnect epoch) so
    /// each gets an independent deterministic schedule.
    pub fn stream_seed(&self, salt: u64) -> u64 {
        // SplitMix64-style mix: cheap, and any bit of salt affects the
        // whole output, so consecutive connection ids do not correlate.
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Shared tallies of injected faults, one per server or client.
#[derive(Debug, Default)]
pub struct FaultCounters {
    delayed: AtomicU64,
    partial: AtomicU64,
    dropped: AtomicU64,
}

impl FaultCounters {
    /// Operations delayed.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Operations truncated to one byte.
    pub fn partial(&self) -> u64 {
        self.partial.load(Ordering::Relaxed)
    }

    /// Streams killed (each drop breaks its stream exactly once; later
    /// failures on the broken stream are not re-counted).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All injected faults.
    pub fn total(&self) -> u64 {
        self.delayed() + self.partial() + self.dropped()
    }
}

/// The fault chosen for one operation.
enum Fault {
    Delay(Duration),
    Partial,
    Drop,
}

/// A `Read`/`Write` transport with seeded fault injection.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    rng: SmallRng,
    plan: FaultPlan,
    counters: Arc<FaultCounters>,
    broken: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner` with the schedule derived from `stream_seed`.
    pub fn new(
        inner: S,
        plan: &FaultPlan,
        stream_seed: u64,
        counters: Arc<FaultCounters>,
    ) -> FaultStream<S> {
        FaultStream {
            inner,
            rng: SmallRng::seed_from_u64(stream_seed),
            plan: plan.clone(),
            counters,
            broken: false,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn draw(&mut self) -> Option<Fault> {
        if !self.rng.random_bool(self.plan.rate) {
            return None;
        }
        let kinds = self.plan.kinds;
        let enabled: Vec<u8> = [
            (kinds.delays, 0u8),
            (kinds.partials, 1u8),
            (kinds.drops, 2u8),
        ]
        .iter()
        .filter(|(on, _)| *on)
        .map(|&(_, k)| k)
        .collect();
        let pick = enabled[self.rng.random_range(0..enabled.len())];
        Some(match pick {
            0 => {
                let us = self.plan.max_delay.as_micros() as u64;
                let d = if us == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_micros(self.rng.random_range(0..=us))
                };
                Fault::Delay(d)
            }
            1 => Fault::Partial,
            _ => Fault::Drop,
        })
    }

    fn broken_err() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected connection drop",
        )
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.broken {
            return Err(Self::broken_err());
        }
        match self.draw() {
            None => self.inner.read(buf),
            Some(Fault::Delay(d)) => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(Fault::Partial) => {
                self.counters.partial.fetch_add(1, Ordering::Relaxed);
                let cap = buf.len().min(1);
                self.inner.read(&mut buf[..cap])
            }
            Some(Fault::Drop) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.broken = true;
                Err(Self::broken_err())
            }
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.broken {
            return Err(Self::broken_err());
        }
        match self.draw() {
            None => self.inner.write(buf),
            Some(Fault::Delay(d)) => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(Fault::Partial) => {
                self.counters.partial.fetch_add(1, Ordering::Relaxed);
                let cap = buf.len().min(1);
                self.inner.write(&buf[..cap])
            }
            Some(Fault::Drop) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.broken = true;
                Err(Self::broken_err())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.broken {
            return Err(Self::broken_err());
        }
        // Flush is never faulted: the fault surface is the data path, and
        // a faulted flush would double-count drops for one logical write.
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn counters() -> Arc<FaultCounters> {
        Arc::new(FaultCounters::default())
    }

    #[test]
    fn zero_rate_is_transparent() {
        let plan = FaultPlan::new(1, 0.0);
        let c = counters();
        let mut s = FaultStream::new(Cursor::new(b"hello".to_vec()), &plan, 7, Arc::clone(&c));
        let mut buf = [0u8; 5];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let plan = FaultPlan::new(99, 0.5).with_max_delay(Duration::ZERO);
        let trace = |seed: u64| -> Vec<bool> {
            let mut s = FaultStream::new(Cursor::new(vec![0u8; 4096]), &plan, seed, counters());
            let mut buf = [0u8; 8];
            (0..64).map(|_| s.read(&mut buf).is_err()).collect()
        };
        assert_eq!(trace(3), trace(3));
        assert_ne!(trace(3), trace(4), "different sub-seeds must diverge");
    }

    #[test]
    fn drop_breaks_the_stream_permanently() {
        let plan = FaultPlan::new(5, 1.0).with_kinds(FaultKinds {
            delays: false,
            partials: false,
            drops: true,
        });
        let c = counters();
        let mut s = FaultStream::new(Cursor::new(vec![1u8; 64]), &plan, 0, Arc::clone(&c));
        let mut buf = [0u8; 8];
        assert!(s.read(&mut buf).is_err());
        assert!(s.read(&mut buf).is_err());
        assert!(s.write(&[1, 2, 3]).is_err());
        // The drop is counted once, not per subsequent failure.
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn partial_faults_serve_one_byte() {
        let plan = FaultPlan::new(5, 1.0).with_kinds(FaultKinds {
            delays: false,
            partials: true,
            drops: false,
        });
        let c = counters();
        let mut s = FaultStream::new(Cursor::new(b"abcdef".to_vec()), &plan, 1, Arc::clone(&c));
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap(); // read_to_end loops over partials
        assert_eq!(out, b"abcdef");
        assert!(c.partial() >= 6, "every read should have been truncated");
    }

    #[test]
    fn writes_survive_partial_faults_via_write_all() {
        let plan = FaultPlan::new(8, 1.0).with_kinds(FaultKinds {
            delays: false,
            partials: true,
            drops: false,
        });
        let c = counters();
        let mut s = FaultStream::new(Cursor::new(Vec::new()), &plan, 2, Arc::clone(&c));
        s.write_all(b"OBSERVE a 0 1:0 0.2 0.5 1\n").unwrap();
        assert_eq!(
            s.get_ref().get_ref().as_slice(),
            b"OBSERVE a 0 1:0 0.2 0.5 1\n"
        );
    }

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::new(0, 0.05).validate().is_ok());
        assert!(FaultPlan::new(0, -0.1).validate().is_err());
        assert!(FaultPlan::new(0, 1.5).validate().is_err());
        assert!(FaultPlan::new(0, f64::NAN).validate().is_err());
        let none = FaultPlan::new(0, 0.1).with_kinds(FaultKinds {
            delays: false,
            partials: false,
            drops: false,
        });
        assert!(none.validate().is_err());
    }

    #[test]
    fn rate_roughly_respected() {
        let plan = FaultPlan::new(11, 0.25).with_kinds(FaultKinds {
            delays: false,
            partials: true,
            drops: false,
        });
        let c = counters();
        let mut s = FaultStream::new(Cursor::new(vec![0u8; 1 << 20]), &plan, 0, Arc::clone(&c));
        let mut buf = [0u8; 16];
        for _ in 0..10_000 {
            let _ = s.read(&mut buf).unwrap();
        }
        let rate = c.partial() as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed fault rate {rate}");
    }
}
