//! `oc-serve` binary: run the peak-prediction service in the foreground.
//!
//! ```text
//! oc-serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--capacity F]
//! ```
//!
//! The server runs until a client sends `SHUTDOWN`; it then drains every
//! shard queue and prints the final `STATS` snapshot to stdout.

use oc_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: oc-serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--capacity F]");
    std::process::exit(2);
}

fn parse_args() -> ServeConfig {
    let mut cfg = ServeConfig::default().with_addr("127.0.0.1:7421");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--shards" => {
                cfg.shards = val("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--queue-depth" => {
                cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage());
            }
            "--capacity" => {
                cfg.machine_capacity = val("--capacity").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("oc-serve: listening on {}", server.addr());
    server.wait();
    eprintln!("oc-serve: shutdown requested, draining");
    let stats = server.shutdown();
    println!("{}", stats.encode_fields());
    ExitCode::SUCCESS
}
