//! `oc-serve` binary: run the peak-prediction service in the foreground.
//!
//! ```text
//! oc-serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--capacity F]
//!          [--frontend threaded|reactor] [--reactor-threads N]
//!          [--max-connections N] [--trace-out FILE]
//! ```
//!
//! The server runs until a client sends `SHUTDOWN`; it then drains every
//! shard queue and prints the final `STATS` snapshot to stdout. With
//! `--trace-out`, structured tracing is enabled for the whole run and the
//! drained spans/events are written to FILE as JSONL on exit (see
//! `docs/OPERATIONS.md` for the event dictionary).

use oc_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: oc-serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--capacity F] \
         [--frontend threaded|reactor] [--reactor-threads N] [--max-connections N] \
         [--trace-out FILE]"
    );
    std::process::exit(2);
}

struct Args {
    cfg: ServeConfig,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut cfg = ServeConfig::default().with_addr("127.0.0.1:7421");
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--shards" => {
                cfg.shards = val("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--queue-depth" => {
                cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage());
            }
            "--capacity" => {
                cfg.machine_capacity = val("--capacity").parse().unwrap_or_else(|_| usage());
            }
            "--frontend" => {
                cfg.frontend = val("--frontend").parse().unwrap_or_else(|_| usage());
            }
            "--reactor-threads" => {
                cfg.reactor_threads = val("--reactor-threads").parse().unwrap_or_else(|_| usage());
            }
            "--max-connections" => {
                cfg.max_connections = val("--max-connections").parse().unwrap_or_else(|_| usage());
            }
            "--trace-out" => trace_out = Some(val("--trace-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    Args { cfg, trace_out }
}

fn write_trace(path: &str) -> std::io::Result<usize> {
    let events = oc_telemetry::trace::drain();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    oc_telemetry::trace::write_jsonl(&mut w, &events)?;
    Ok(events.len())
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.trace_out.is_some() {
        oc_telemetry::trace::enable();
    }
    let server = match Server::start(args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("oc-serve: listening on {}", server.addr());
    server.wait();
    eprintln!("oc-serve: shutdown requested, draining");
    let stats = server.shutdown();
    println!("{}", stats.encode_fields());
    if let Some(path) = args.trace_out {
        oc_telemetry::trace::disable();
        match write_trace(&path) {
            Ok(n) => eprintln!("oc-serve: wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("oc-serve: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
