//! Per-shard counters and service-latency accounting.
//!
//! Each shard worker owns one [`ShardMetrics`]: plain counters plus a
//! bounded-memory latency [`Histogram`] (reused from `oc-stats`). Latency
//! is *service* latency — from the instant a request was enqueued on the
//! shard queue to the instant the worker finished handling it — so queueing
//! delay under load is visible, not hidden.
//!
//! Snapshots from all shards are merged bin-wise (histogram merge keeps
//! full resolution) and summarized into the wire-level
//! [`StatsSnapshot`] with p50/p99 read off the
//! merged histogram.

use crate::proto::StatsSnapshot;
use oc_stats::Histogram;
use std::time::Duration;

/// Upper edge of the latency histogram, microseconds. Latencies beyond it
/// land in the overflow counter; `max_us` still reports them exactly.
pub const LATENCY_HI_US: f64 = 20_000.0;

/// Latency histogram bins (5 µs resolution over `[0, LATENCY_HI_US)`).
pub const LATENCY_BINS: usize = 4_000;

/// One shard's counters. Cheap to update on every message.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Samples ingested into machine state.
    pub observes: u64,
    /// Predictions served.
    pub predicts: u64,
    /// Admission checks served.
    pub admits: u64,
    /// Samples rejected as stale.
    pub stale: u64,
    /// Other errors (gap, invalid sample, unknown machine).
    pub errors: u64,
    /// Machines with live state (filled in at snapshot time).
    pub machines: u64,
    /// Injected faults (filled in at the server from the connection
    /// layer's [`crate::fault::FaultCounters`]; always 0 at shard level).
    pub faults: u64,
    /// Idle-deadline connection closes (filled in at the server; always 0
    /// at shard level).
    pub timeouts: u64,
    /// Connections rejected at the max-connections cap (filled in at the
    /// server; always 0 at shard level).
    pub conn_rejects: u64,
    /// Service-latency histogram, microseconds.
    pub latency: Histogram,
    /// Count of latency observations.
    pub lat_count: u64,
    /// Sum of latency observations, microseconds.
    pub lat_sum_us: f64,
    /// Maximum latency observed, microseconds.
    pub lat_max_us: f64,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        ShardMetrics {
            observes: 0,
            predicts: 0,
            admits: 0,
            stale: 0,
            errors: 0,
            machines: 0,
            faults: 0,
            timeouts: 0,
            conn_rejects: 0,
            latency: Histogram::new(0.0, LATENCY_HI_US, LATENCY_BINS)
                .expect("static histogram parameters are valid"),
            lat_count: 0,
            lat_sum_us: 0.0,
            lat_max_us: 0.0,
        }
    }
}

impl ShardMetrics {
    /// Records one service latency.
    pub fn record_latency(&mut self, d: Duration) {
        self.record_latency_n(d, 1);
    }

    /// Records `n` samples of the same service latency in one histogram
    /// update — a coalesced chunk's items all share an enqueue instant,
    /// so the bin search need not repeat per item.
    pub fn record_latency_n(&mut self, d: Duration, n: u64) {
        if n == 0 {
            return;
        }
        let us = d.as_secs_f64() * 1e6;
        self.latency.push_n(us, n);
        self.lat_count += n;
        self.lat_sum_us += us * n as f64;
        if us > self.lat_max_us {
            self.lat_max_us = us;
        }
    }

    /// Merges another shard's metrics into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.observes += other.observes;
        self.predicts += other.predicts;
        self.admits += other.admits;
        self.stale += other.stale;
        self.errors += other.errors;
        self.machines += other.machines;
        self.faults += other.faults;
        self.timeouts += other.timeouts;
        self.conn_rejects += other.conn_rejects;
        self.latency
            .merge(&other.latency)
            .expect("all shard histograms share the static shape");
        self.lat_count += other.lat_count;
        self.lat_sum_us += other.lat_sum_us;
        self.lat_max_us = self.lat_max_us.max(other.lat_max_us);
    }

    /// Summarizes into the wire snapshot. `busy` is counted at the server
    /// (rejects never reach a shard), so it is passed in.
    ///
    /// A quantile whose rank lands in the histogram's overflow mass comes
    /// back as the range ceiling; the exact tracked maximum is substituted
    /// so a heavy tail can never report a percentile below the exact mean
    /// (the "mean 18x above p99" cluster-1m artifact).
    pub fn snapshot(&self, busy: u64) -> StatsSnapshot {
        let q = |p: f64| match self.latency.quantile(p) {
            Ok(v) if v >= LATENCY_HI_US => self.lat_max_us.max(LATENCY_HI_US),
            Ok(v) => v,
            Err(_) => 0.0,
        };
        StatsSnapshot {
            observes: self.observes,
            predicts: self.predicts,
            admits: self.admits,
            busy,
            stale: self.stale,
            errors: self.errors,
            machines: self.machines,
            faults: self.faults,
            timeouts: self.timeouts,
            conn_rejects: self.conn_rejects,
            // Stamped by the server (`Shared::epoch`); shard metrics have
            // no identity of their own.
            epoch: 0,
            p50_us: q(50.0),
            p99_us: q(99.0),
            mean_us: if self.lat_count == 0 {
                0.0
            } else {
                self.lat_sum_us / self.lat_count as f64
            },
            max_us: self.lat_max_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_come_from_histogram() {
        let mut m = ShardMetrics::default();
        for us in 1..=100u64 {
            m.record_latency(Duration::from_micros(us));
        }
        let s = m.snapshot(0);
        assert!((s.p50_us - 50.0).abs() < 6.0, "p50 {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() < 6.0, "p99 {}", s.p99_us);
        assert!((s.mean_us - 50.5).abs() < 1.0);
        assert!((s.max_us - 100.0).abs() < 1.0);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = ShardMetrics::default();
        let mut b = ShardMetrics::default();
        a.observes = 10;
        a.machines = 2;
        b.observes = 5;
        b.stale = 1;
        b.machines = 3;
        a.record_latency(Duration::from_micros(10));
        b.record_latency(Duration::from_micros(30));
        a.merge(&b);
        let s = a.snapshot(7);
        assert_eq!(s.observes, 15);
        assert_eq!(s.stale, 1);
        assert_eq!(s.machines, 5);
        assert_eq!(s.busy, 7);
        assert!(s.max_us >= 30.0);
    }

    #[test]
    fn overflow_latency_keeps_exact_max() {
        let mut m = ShardMetrics::default();
        m.record_latency(Duration::from_millis(500)); // beyond LATENCY_HI_US
        let s = m.snapshot(0);
        assert!((s.max_us - 500_000.0).abs() < 1_000.0);
    }

    /// Regression for the impossible cluster-1m pair (mean 264 ms, p99
    /// 14 ms): when most of the mass sits past the histogram ceiling, the
    /// overflow-blind quantile reported the in-range minority as p99
    /// while the exact mean counted everything. Post-fix, a saturated
    /// quantile answers the exact maximum, so mean <= p99 <= max — and
    /// the merged snapshot stays inside the merged min/max, per shard and
    /// across members.
    #[test]
    fn heavy_overflow_tail_keeps_mean_at_or_below_p99() {
        let mut a = ShardMetrics::default();
        let mut b = ShardMetrics::default();
        // Shard a: fast minority in range, slow majority far past it.
        for _ in 0..100 {
            a.record_latency(Duration::from_micros(200));
        }
        for _ in 0..400 {
            a.record_latency(Duration::from_millis(250));
        }
        // Shard b: an even slower tail.
        for _ in 0..50 {
            b.record_latency(Duration::from_micros(900));
        }
        for _ in 0..100 {
            b.record_latency(Duration::from_millis(800));
        }
        for (m, max) in [(&a, 250_000.0), (&b, 800_000.0)] {
            let s = m.snapshot(0);
            assert!(
                s.mean_us <= s.p99_us,
                "mean {} above p99 {}",
                s.mean_us,
                s.p99_us
            );
            assert!((s.max_us - max).abs() < 2_000.0);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let s = merged.snapshot(0);
        assert!(s.p50_us <= s.p99_us && s.p99_us <= s.max_us);
        assert!(
            s.mean_us <= s.p99_us,
            "merged mean {} above merged p99 {}",
            s.mean_us,
            s.p99_us
        );
        // Mean must lie within the merged distribution's support.
        assert!(s.mean_us >= 200.0 && s.mean_us <= s.max_us);
    }
}
