//! Per-connection protocol machinery shared by both frontends.
//!
//! The wire behavior of a connection — line framing, the observe
//! micro-batcher, `BATCH` framing, error handling — lives here exactly
//! once. The threaded frontend (`serve_lines`, driven by blocking
//! reads with a poll deadline) and the reactor frontend (the `reactor`
//! module, driven by readiness events) both feed bytes through the same
//! [`LineAccumulator`] and dispatch complete lines through the same
//! `process_line`, so their responses are bit-identical by construction
//! (`tests/serve_smoke.rs` pins this).

use crate::fault::FaultStream;
use crate::proto::{parse_batch_header, ErrCode, ProtoScratch, Request, Response, MAX_LINE_BYTES};
use crate::server::{dispatch, shutting_down, Shared, STOP_POLL};
use crate::shard::{ObserveChunk, ObserveItem, SendFail, ShardMsg, ShardPool, OBS_CHUNK};
use oc_telemetry::trace;
use oc_trace::time::Tick;
use std::fmt;
use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// What a [`LineAccumulator::feed`] call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feed {
    /// Every complete line in the fed bytes was handled; any trailing
    /// partial line is retained for the next feed.
    More,
    /// The line handler asked to close the connection (unrecoverable
    /// framing; its response was already emitted). Remaining fed bytes
    /// were discarded.
    Close,
    /// The retained partial line exceeded [`MAX_LINE_BYTES`] without a
    /// newline. The connection cannot be resynchronized; the caller
    /// answers `ERR parse` and closes.
    Oversize,
}

/// The per-connection read state machine: splits an arbitrary sequence
/// of byte chunks (however the transport happened to segment them) into
/// complete protocol lines.
///
/// Invariants, pinned by the proptests in
/// `crates/serve/tests/line_accumulator.rs`:
///
/// * complete lines come out byte-identical no matter where chunk
///   boundaries fall (a chunk boundary mid-line loses nothing);
/// * a line is delivered only once its `\n` arrives — a truncated final
///   line is *never* delivered (the caller discards it at EOF via
///   [`LineAccumulator::discard_partial`], so a peer that died mid-write
///   cannot ingest half a request);
/// * an unterminated accumulation longer than [`MAX_LINE_BYTES`] is
///   reported as [`Feed::Oversize`] instead of buffering without bound.
///   (A *terminated* over-long line is delivered and rejected by the
///   parser as a recoverable `ERR parse` — the newline proves the stream
///   is still in sync.)
///
/// Chunks whose lines are already complete are handed to the callback
/// straight from the caller's buffer (zero-copy); only partial lines are
/// copied into the retained buffer.
#[derive(Debug, Default)]
pub struct LineAccumulator {
    acc: Vec<u8>,
}

impl LineAccumulator {
    /// An empty accumulator.
    pub fn new() -> LineAccumulator {
        LineAccumulator { acc: Vec::new() }
    }

    /// Bytes of the retained partial line (no newline seen yet).
    pub fn partial_len(&self) -> usize {
        self.acc.len()
    }

    /// Discards the retained partial line, returning its length. Called
    /// at EOF: a trailing fragment without a newline is a truncated
    /// request from a peer that died mid-write — dropping it (rather
    /// than guessing at half a request) is part of the wire contract.
    pub fn discard_partial(&mut self) -> usize {
        let n = self.acc.len();
        self.acc.clear();
        n
    }

    /// Feeds one chunk of received bytes, invoking `on_line` for every
    /// complete line (terminator included). `on_line` returns
    /// `Ok(false)` to close the connection.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `on_line`; remaining fed
    /// bytes are discarded.
    pub fn feed<F>(&mut self, mut chunk: &[u8], mut on_line: F) -> std::io::Result<Feed>
    where
        F: FnMut(&[u8]) -> std::io::Result<bool>,
    {
        loop {
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (head, rest) = chunk.split_at(pos + 1);
                    chunk = rest;
                    let keep_open = if self.acc.is_empty() {
                        on_line(head)?
                    } else {
                        self.acc.extend_from_slice(head);
                        let keep = on_line(&self.acc);
                        self.acc.clear();
                        keep?
                    };
                    if !keep_open {
                        return Ok(Feed::Close);
                    }
                }
                None => {
                    self.acc.extend_from_slice(chunk);
                    if self.acc.len() > MAX_LINE_BYTES {
                        self.acc.clear();
                        return Ok(Feed::Oversize);
                    }
                    return Ok(Feed::More);
                }
            }
        }
    }
}

/// Per-connection reusable state: the parse scratch, the response encode
/// buffer, the observe micro-batcher, and `BATCH` framing progress. All
/// buffers are recycled line over line, so the steady-state request path
/// performs no per-request heap allocation.
pub(crate) struct ConnState {
    pub(crate) scratch: ProtoScratch,
    pub(crate) out: Vec<u8>,
    pub(crate) chunk: Box<ObserveChunk>,
    /// Shard the current chunk routes to (meaningful when `chunk.len > 0`).
    pub(crate) chunk_shard: usize,
    /// Sub-request lines still expected in the current `BATCH` frame.
    pub(crate) batch_left: usize,
    /// A chunk of the current `BATCH` frame was rejected `BUSY`: every
    /// later observe in the same frame answers `BUSY` without enqueueing,
    /// so a frame's applied observes are always a prefix of the frame.
    /// Pipelined clients rely on this to replay a rejected tail without
    /// reordering any machine's sample stream (PROTOCOL.md §2.1).
    pub(crate) frame_busy: bool,
    /// Last observed routing key and its shard. A connection almost
    /// always streams samples for one machine (the node-agent shape), so
    /// this memo replaces the per-line routing hash with an equality
    /// check. (Ring changes never invalidate it: shard routing is
    /// `key_hash % shards`, independent of the cluster ring.)
    route_memo: Option<(crate::shard::MachineKey, usize)>,
    /// Ring version the cached [`ConnState::ownership`] map was cloned
    /// at; `u64::MAX` forces the first line to snapshot. Re-snapshotted
    /// whenever the server's version moves (a `RINGSET` landed), so the
    /// observe hot path pays one atomic load — not a lock — per line.
    own_version: u64,
    /// Cached clone of the server's live ownership map (`None` =
    /// standalone: own every key).
    ownership: Option<crate::config::OwnershipMap>,
}

impl ConnState {
    pub(crate) fn new() -> ConnState {
        ConnState {
            scratch: ProtoScratch::new(),
            out: Vec::with_capacity(256),
            chunk: Box::new(ObserveChunk::new()),
            chunk_shard: 0,
            batch_left: 0,
            frame_busy: false,
            route_memo: None,
            own_version: u64::MAX,
            ownership: None,
        }
    }
}

/// This connection's role check for `key`, served from the cached
/// ownership map (refreshed when a `RINGSET` bumps the ring version).
fn cached_role(
    state: &mut ConnState,
    shared: &Shared,
    key: &crate::shard::MachineKey,
) -> crate::config::KeyRole {
    let version = crate::server::ring_version(shared);
    if state.own_version != version {
        let (v, map) = crate::server::ownership_snapshot(shared);
        state.own_version = v;
        state.ownership = map;
    }
    match &state.ownership {
        Some(map) => map.role_of(crate::shard::key_hash(key)),
        None => crate::config::KeyRole::Owner,
    }
}

/// Encodes `resp` into the recycled buffer and writes it with its
/// newline.
pub(crate) fn write_resp<W: Write>(
    writer: &mut W,
    out: &mut Vec<u8>,
    resp: &Response,
) -> std::io::Result<()> {
    out.clear();
    resp.encode_into(out);
    out.push(b'\n');
    writer.write_all(out)
}

/// Enqueues the pending observe chunk (if any) and writes the deferred
/// acknowledgements, one per sample, in order. `try_send` is all-or-
/// nothing for the chunk: on `BUSY` every sample is answered `BUSY` and
/// the client retries them individually (ingestion is idempotent, so the
/// partial overlap of a retried run is harmless). Generation stripes are
/// bumped strictly after a successful enqueue and before the `OK`s are
/// written — the predict cache's read-your-writes edge.
pub(crate) fn flush_chunk<W: Write>(
    state: &mut ConnState,
    writer: &mut W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<()> {
    let len = state.chunk.len;
    if len == 0 {
        return Ok(());
    }
    let shard = state.chunk_shard;
    // One stripe hash per run of same-machine samples (a fan-in
    // connection fills whole chunks from one machine); each run's
    // generation stripe is bumped once with the run length.
    let mut runs = [(0usize, 0u64); OBS_CHUNK];
    let mut n_runs = 0;
    {
        let items = &state.chunk.items[..len];
        let mut i = 0;
        while i < items.len() {
            let key = &items[i].key;
            let start = i;
            while i < items.len() && items[i].key == *key {
                i += 1;
            }
            runs[n_runs] = (shared.cache.stripe_of(key), (i - start) as u64);
            n_runs += 1;
        }
    }
    let sent = if len == 1 {
        // A lone sample skips the chunk wrapper (and its box) entirely.
        let item = std::mem::take(&mut state.chunk.items[0]);
        state.chunk.len = 0;
        pool.try_send(
            shard,
            ShardMsg::Observe {
                key: item.key,
                task: item.task,
                usage: item.usage,
                limit: item.limit,
                mem: item.mem,
                tick: item.tick,
                enqueued: state.chunk.enqueued,
            },
        )
    } else {
        let chunk = std::mem::replace(&mut state.chunk, Box::new(ObserveChunk::new()));
        pool.try_send(shard, ShardMsg::ObserveBatch(chunk))
    };
    match sent {
        Ok(()) => {
            if len > 1 {
                shared.batch_coalesced.add(len as u64 - 1);
            }
            for (stripe, n) in &runs[..n_runs] {
                shared.cache.bump_n(*stripe, *n);
            }
            for _ in 0..len {
                writer.write_all(b"OK\n")?;
            }
        }
        Err(SendFail::Busy) => {
            shared.busy.add(len as u64);
            trace::event("serve.busy", shard as u64, len as u64);
            // Poison the rest of the current frame (if any): later
            // observes in it answer BUSY unconditionally, keeping the
            // frame's applied observes a contiguous prefix.
            if state.batch_left > 0 {
                state.frame_busy = true;
            }
            for _ in 0..len {
                writer.write_all(b"BUSY\n")?;
            }
        }
        Err(SendFail::Closed) => {
            let resp = shutting_down();
            for _ in 0..len {
                write_resp(writer, &mut state.out, &resp)?;
            }
        }
    }
    Ok(())
}

/// Handles one complete request line (batch header, batched sub-request,
/// or ordinary request). Returns `Ok(false)` when the connection must
/// close (unrecoverable framing).
pub(crate) fn process_line<W: Write>(
    raw: &[u8],
    state: &mut ConnState,
    writer: &mut W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<bool> {
    let parse_err = |e: &dyn fmt::Display| Response::Err {
        code: ErrCode::Parse,
        detail: e.to_string(),
    };
    let Ok(line) = std::str::from_utf8(raw) else {
        flush_chunk(state, writer, pool, shared)?;
        shared.parse_errors.inc();
        state.batch_left = state.batch_left.saturating_sub(1);
        let resp = parse_err(&"request line is not valid UTF-8");
        write_resp(writer, &mut state.out, &resp)?;
        return Ok(true);
    };
    let line = line.trim_end_matches(['\r', '\n']);
    let in_batch = state.batch_left > 0;
    if in_batch {
        state.batch_left -= 1;
    } else {
        // Busy-poisoning is frame-scoped; a fresh line outside any frame
        // (including the next frame's header) clears it.
        state.frame_busy = false;
        match parse_batch_header(line, &mut state.scratch) {
            // Not a batch header: fall through to the ordinary parse.
            Ok(None) => {}
            Ok(Some(n)) => {
                flush_chunk(state, writer, pool, shared)?;
                shared.batch_requests.add(n as u64);
                state.batch_left = n;
                // The multi-response header goes out up front — the count
                // is known from the frame header, and sub-responses then
                // stream in sub-request order.
                state.out.clear();
                crate::proto::encode_batchr_header_into(n, &mut state.out);
                state.out.push(b'\n');
                writer.write_all(&state.out)?;
                return Ok(true);
            }
            Err(e) => {
                // A malformed BATCH header is unrecoverable: the number
                // of follow-up lines is unknown, so the stream cannot be
                // resynchronized. Answer and close.
                flush_chunk(state, writer, pool, shared)?;
                shared.parse_errors.inc();
                let resp = parse_err(&e);
                write_resp(writer, &mut state.out, &resp)?;
                return Ok(false);
            }
        }
    }
    match Request::parse_in(line, &mut state.scratch) {
        Err(e) => {
            flush_chunk(state, writer, pool, shared)?;
            shared.parse_errors.inc();
            let resp = parse_err(&e);
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
        Ok(Request::Observe {
            cell,
            machine,
            task,
            usage,
            limit,
            mem,
            tick,
        }) => {
            shared.requests.observe.inc();
            let key = (cell, machine);
            // Owners ingest their own keys; replicas ingest the mirrored
            // stream. A key owned elsewhere is redirected — after the
            // pending chunk flushes, so responses stay in request order.
            if cached_role(state, shared, &key) == crate::config::KeyRole::Remote {
                flush_chunk(state, writer, pool, shared)?;
                let resp = crate::server::not_mine(shared);
                write_resp(writer, &mut state.out, &resp)?;
                return Ok(true);
            }
            // An earlier chunk of this frame was rejected: the rest of
            // the frame's observes reject too (the chunk buffer is empty
            // here — a poisoning flush answered and cleared it).
            if state.frame_busy {
                shared.busy.inc();
                writer.write_all(b"BUSY\n")?;
                return Ok(true);
            }
            let shard = match &state.route_memo {
                Some((memo_key, memo_shard)) if *memo_key == key => *memo_shard,
                _ => {
                    let s = pool.route(&key);
                    state.route_memo = Some((key.clone(), s));
                    s
                }
            };
            if state.chunk.len > 0 && (shard != state.chunk_shard || state.chunk.len == OBS_CHUNK) {
                flush_chunk(state, writer, pool, shared)?;
                // That flush may have just poisoned the frame. This line
                // must reject too — appending it to the fresh chunk would
                // defer its reply past the immediate BUSYs of the lines
                // after it, permuting replies within the BATCHR frame.
                if state.frame_busy {
                    shared.busy.inc();
                    writer.write_all(b"BUSY\n")?;
                    return Ok(true);
                }
            }
            if state.chunk.len == 0 {
                state.chunk_shard = shard;
                state.chunk.enqueued = Instant::now();
            }
            let slot = state.chunk.len;
            state.chunk.items[slot] = ObserveItem {
                key,
                task,
                usage,
                limit,
                mem,
                tick: Tick(tick),
            };
            state.chunk.len = slot + 1;
            Ok(true)
        }
        Ok(
            req @ (Request::Stats
            | Request::Metrics
            | Request::Shutdown
            | Request::Ring
            | Request::RingSet { .. }
            | Request::Handoff),
        ) if in_batch => {
            // Control verbs are not batchable: one per-sub-request parse
            // error, and the rest of the frame proceeds normally.
            // (HANDOFF's multi-line dump would break BATCHR framing.)
            flush_chunk(state, writer, pool, shared)?;
            shared.parse_errors.inc();
            let verb = match req {
                Request::Stats => "STATS",
                Request::Metrics => "METRICS",
                Request::Ring => "RING",
                Request::RingSet { .. } => "RINGSET",
                Request::Handoff => "HANDOFF",
                _ => "SHUTDOWN",
            };
            let resp = parse_err(&format_args!("{verb} is not allowed inside BATCH"));
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
        Ok(Request::Handoff) => {
            shared.requests.handoff.inc();
            // The pending chunk flushes first so the dump reflects every
            // sample this connection already had acknowledged.
            flush_chunk(state, writer, pool, shared)?;
            if !shared.cfg.handoff_log {
                let resp = Response::Err {
                    code: ErrCode::Internal,
                    detail: "handoff log disabled on this server".to_string(),
                };
                write_resp(writer, &mut state.out, &resp)?;
                return Ok(true);
            }
            match crate::server::collect_handoff(pool) {
                Ok(entries) => {
                    // `HANDOFF <n>` header, then n OBSERVE lines in
                    // original arrival order — the dump replays verbatim
                    // through any ingest path.
                    state.out.clear();
                    state.out.extend_from_slice(b"HANDOFF ");
                    state
                        .out
                        .extend_from_slice(entries.len().to_string().as_bytes());
                    state.out.push(b'\n');
                    writer.write_all(&state.out)?;
                    for e in entries {
                        let req = Request::Observe {
                            cell: e.key.0,
                            machine: e.key.1,
                            task: e.task,
                            usage: e.usage,
                            limit: e.limit,
                            mem: e.mem,
                            tick: e.tick.0,
                        };
                        state.out.clear();
                        req.encode_into(&mut state.out);
                        state.out.push(b'\n');
                        writer.write_all(&state.out)?;
                    }
                }
                Err(resp) => write_resp(writer, &mut state.out, &resp)?,
            }
            Ok(true)
        }
        Ok(req) => {
            // Ordering: every coalesced sample must be enqueued before a
            // PREDICT/ADMIT/STATS sees the shard, so a connection always
            // reads its own acknowledged writes.
            flush_chunk(state, writer, pool, shared)?;
            let resp = dispatch(req, pool, shared);
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
    }
}

/// The `ERR parse` response for an unterminated over-long line.
pub(crate) fn oversize_resp() -> Response {
    Response::Err {
        code: ErrCode::Parse,
        detail: format!("line exceeds {MAX_LINE_BYTES} bytes"),
    }
}

/// The `ERR timeout` response for a connection idle past its deadline.
pub(crate) fn idle_resp() -> Response {
    Response::Err {
        code: ErrCode::Timeout,
        detail: "idle past deadline; reconnect to resume".to_string(),
    }
}

/// Sets deadlines, wraps the stream in the fault plan if configured, and
/// runs the request loop (threaded frontend).
pub(crate) fn handle_connection(
    stream: TcpStream,
    pool: &ShardPool,
    shared: &Shared,
    conn_id: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(STOP_POLL))?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let read_half = stream.try_clone()?;
    match &shared.cfg.faults {
        Some(plan) => {
            let r = FaultStream::new(
                read_half,
                plan,
                plan.stream_seed(conn_id * 2),
                Arc::clone(&shared.faults),
            );
            let w = FaultStream::new(
                stream,
                plan,
                plan.stream_seed(conn_id * 2 + 1),
                Arc::clone(&shared.faults),
            );
            serve_lines(r, w, pool, shared)
        }
        None => serve_lines(read_half, stream, pool, shared),
    }
}

/// Serves one connection with blocking reads (threaded frontend): one
/// response line per request line, in order (plus one `BATCHR` header
/// line per `BATCH` frame).
///
/// The read deadline ([`STOP_POLL`]) doubles as the poll interval for
/// the stop flag and the idle deadline; any read progress (even a
/// partial line) counts as activity.
pub(crate) fn serve_lines<R: Read, W: Write>(
    mut read_half: R,
    write_half: W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<()> {
    let mut writer = BufWriter::new(write_half);
    let mut acc = LineAccumulator::new();
    let mut state = ConnState::new();
    let mut buf = [0u8; 8192];
    let mut last_activity = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // In-flight connections are abandoned at shutdown; anything
            // already queued on the shards is still drained and counted.
            break;
        }
        match read_half.read(&mut buf) {
            Ok(0) => {
                // A trailing fragment without a newline is a truncated
                // request from a peer that died mid-write: discard it
                // rather than guessing at half a request. (A truncated
                // BATCH frame's already-received sub-requests were
                // dispatched; their responses are simply undeliverable —
                // safe, because ingestion is idempotent.)
                acc.discard_partial();
                break;
            }
            Ok(n) => {
                last_activity = Instant::now();
                let fed = acc.feed(&buf[..n], |line| {
                    // Spans the whole request: parse, shard round-trip,
                    // and response encode. Inert unless tracing is on.
                    let req_span = trace::span("serve.request");
                    let keep = process_line(line, &mut state, &mut writer, pool, shared)?;
                    drop(req_span);
                    Ok(keep)
                })?;
                match fed {
                    Feed::More => {
                        // Requests that arrived in one chunk were
                        // coalesced; the pipeline has now run dry —
                        // enqueue the pending chunk and push every
                        // response out.
                        flush_chunk(&mut state, &mut writer, pool, shared)?;
                        writer.flush()?;
                    }
                    Feed::Close => return writer.flush(), // cannot resync
                    Feed::Oversize => {
                        flush_chunk(&mut state, &mut writer, pool, shared)?;
                        write_resp(&mut writer, &mut state.out, &oversize_resp())?;
                        writer.flush()?;
                        break; // Cannot resynchronize: close.
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                flush_chunk(&mut state, &mut writer, pool, shared)?;
                writer.flush()?;
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    shared.timeouts.inc();
                    trace::event("serve.conn.idle_close", 0, 0);
                    write_resp(&mut writer, &mut state.out, &idle_resp())?;
                    return writer.flush();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    flush_chunk(&mut state, &mut writer, pool, shared)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::server::Server;
    use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
    use std::sync::mpsc::sync_channel;

    fn filler(m: u32, tick: u64) -> ShardMsg {
        ShardMsg::Observe {
            key: (CellId::new("t"), MachineId(m)),
            task: TaskId::new(JobId(1), 0),
            usage: 0.2,
            limit: 0.5,
            mem: None,
            tick: Tick(tick),
            enqueued: Instant::now(),
        }
    }

    fn predict(reply: std::sync::mpsc::SyncSender<Response>) -> ShardMsg {
        ShardMsg::Predict {
            key: (CellId::new("t"), MachineId(1)),
            vector: false,
            reply,
            enqueued: Instant::now(),
        }
    }

    fn fill_until_busy(pool: &ShardPool) {
        let mut tick = 0;
        loop {
            match pool.try_send(0, filler(1, tick)) {
                Ok(()) => tick += 1,
                Err(SendFail::Busy) => return,
                Err(SendFail::Closed) => panic!("shard worker died"),
            }
        }
    }

    /// A frame whose first chunk rejects `BUSY` answers `BUSY` for every
    /// later observe of the same frame without enqueueing — applied
    /// observes are a contiguous frame prefix, replies stay in line
    /// order, and the next frame starts clean (PROTOCOL.md §2.1).
    #[test]
    fn busy_mid_frame_poisons_the_rest_of_the_frame_in_order() {
        let cfg = ServeConfig::default().with_shards(1).with_queue_depth(3);
        let metrics = oc_telemetry::MetricsRegistry::new();
        let depth_gauge = metrics.gauge("serve.shard.queue_depth.0");
        let pool = ShardPool::new(&cfg, &metrics).unwrap();
        let shared = Server::test_shared(&cfg, metrics);

        // Park the worker deterministically, no sleeps: two rendezvous
        // PREDICTs. The worker parks in the first reply.send; receiving
        // that reply lets it take exactly one more message (the second
        // predict) off the queue and park again — for good, because the
        // second reply is never received until the end of the test.
        let (r1, rx1) = sync_channel::<Response>(0);
        let (r2, rx2) = sync_channel::<Response>(0);
        pool.send(0, predict(r1)).unwrap();
        pool.send(0, predict(r2)).unwrap();
        fill_until_busy(&pool);
        rx1.recv().unwrap();
        // The worker frees exactly one slot (taking the second predict);
        // claim it, top the queue back up, and it stays full forever.
        loop {
            match pool.try_send(0, filler(1, 9_999)) {
                Ok(()) => break,
                Err(SendFail::Busy) => std::thread::yield_now(),
                Err(SendFail::Closed) => panic!("shard worker died"),
            }
        }
        fill_until_busy(&pool);

        // A frame of OBS_CHUNK + 4 observes: the chunk-full flush at line
        // 65 rejects BUSY and poisons the frame; lines 65..68 must reject
        // immediately, in line order, without touching the queue.
        let n = OBS_CHUNK + 4;
        let mut state = ConnState::new();
        let mut out: Vec<u8> = Vec::new();
        let header = format!("BATCH {n}");
        assert!(process_line(header.as_bytes(), &mut state, &mut out, &pool, &shared).unwrap());
        for t in 0..n {
            let line = format!("OBSERVE c 7 1:0 0.2 0.5 {t}");
            assert!(process_line(line.as_bytes(), &mut state, &mut out, &pool, &shared).unwrap());
        }
        assert_eq!(
            state.chunk.len, 0,
            "a poisoned frame leaves no deferred chunk"
        );
        let expected: String = format!("BATCHR {n}\n") + &"BUSY\n".repeat(n);
        assert_eq!(String::from_utf8(out.clone()).unwrap(), expected);
        assert_eq!(shared.busy.get() as usize, n);

        // Release the worker and let the queue drain: the next frame
        // starts unpoisoned and its observes are applied and acked.
        let resp = rx2.recv().unwrap();
        assert!(matches!(resp, Response::Err { .. } | Response::Pred { .. }));
        while depth_gauge.get() != 0 {
            std::thread::yield_now();
        }
        out.clear();
        assert!(process_line(b"BATCH 2", &mut state, &mut out, &pool, &shared).unwrap());
        assert!(process_line(
            b"OBSERVE c 7 1:0 0.2 0.5 100",
            &mut state,
            &mut out,
            &pool,
            &shared
        )
        .unwrap());
        assert!(process_line(
            b"OBSERVE c 7 1:0 0.3 0.5 101",
            &mut state,
            &mut out,
            &pool,
            &shared
        )
        .unwrap());
        // End of the read burst: the pending chunk flushes (Feed::More).
        flush_chunk(&mut state, &mut out, &pool, &shared).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "BATCHR 2\nOK\nOK\n",
            "the poison is frame-scoped: the next frame is clean"
        );
        pool.shutdown();
    }
}
