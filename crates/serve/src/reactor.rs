//! The readiness-driven reactor frontend.
//!
//! A small fixed pool of reactor threads (sized by
//! [`crate::config::ServeConfig::reactor_threads`]) each owns an
//! `oc-reactor` poller and an interest list, and drives per-connection
//! state machines: read-accumulate ([`LineAccumulator`]) → parse via the
//! zero-copy codec → dispatch to the shard actors → buffered
//! non-blocking write with would-block re-arm. Tens of thousands of
//! mostly-idle connections multiplex onto a few threads; the thread-per-
//! connection frontend remains available behind
//! [`crate::config::Frontend::Threaded`].
//!
//! **Readiness semantics.** Polling is level-triggered. A readable
//! connection is drained to `WouldBlock` (or the write high-water mark,
//! see below) per event; complete lines are processed in arrival order
//! and every response byte is appended to the connection's output
//! buffer, preserving the one-response-per-request-in-order contract.
//!
//! **Write backpressure.** Responses are written opportunistically after
//! every burst of processing. On `WouldBlock` the remainder stays
//! buffered, `WRITABLE` interest is armed, and
//! `serve.reactor.writes_blocked` ticks. While more than
//! [`OUTBUF_HIGH_WATER`] bytes are pending the connection's `READABLE`
//! interest is dropped — a peer that pipelines requests without reading
//! responses is throttled instead of growing the buffer without bound. A
//! peer that stays unwritable for `write_timeout` is disconnected, like
//! a blocked write deadline in the threaded frontend.
//!
//! **Deadlines.** Each reactor thread sweeps its connections on a
//! fraction of the tightest configured deadline: idle connections get
//! `ERR timeout` and a drain-then-close exactly like the threaded
//! frontend; any read progress (even a partial line) counts as activity.
//!
//! **Faults.** The fault wrapper composes with non-blocking streams: a
//! would-block read/write passes through it like any other operation
//! (consuming a schedule draw, as the threaded frontend's deadline polls
//! do), injected delays briefly stall the reactor thread (chaos tests
//! only), and an injected drop closes the connection at the next event.
//!
//! **Shutdown.** [`ReactorPool::stop_and_join`] wakes every thread via
//! its [`Waker`]; each enqueues pending observe chunks, makes one best-
//! effort write pass, drops its connections, and exits — so shutdown
//! latency is bounded by the in-flight work, not a polling interval, and
//! the shard pool's single-owner drain invariant is preserved.

use crate::conn::{
    flush_chunk, idle_resp, oversize_resp, process_line, write_resp, ConnState, Feed,
    LineAccumulator,
};
use crate::fault::FaultStream;
use crate::server::Shared;
use crate::shard::ShardPool;
use oc_reactor::{Events, Interest, Poller, RawFd, Waker};
use oc_telemetry::trace;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token reserved for each reactor thread's waker.
const WAKE_TOKEN: usize = usize::MAX;

/// Pending response bytes above which a connection stops being read
/// (write backpressure); reading resumes once the buffer drains.
pub(crate) const OUTBUF_HIGH_WATER: usize = 256 * 1024;

/// Per-event read scratch size. One buffer per reactor thread, shared by
/// all of its connections.
const READ_SCRATCH: usize = 64 * 1024;

/// Readiness events handled between voluntary yields (see the event loop
/// in [`ReactorThread::run`]). Small enough to bound how long enqueued
/// chunks can age behind a busy sweep on a core-starved host, large
/// enough that the yield overhead vanishes against per-event work.
const YIELD_EVERY: usize = 2;

/// New-connection handoff slot for one reactor thread.
struct Injector {
    queue: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

/// The reactor thread pool. Accepted sockets are handed to threads
/// round-robin via [`ReactorPool::submit`].
pub(crate) struct ReactorPool {
    injectors: Vec<Arc<Injector>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next: AtomicUsize,
}

impl ReactorPool {
    /// Spawns `threads` reactor threads sharing `pool` and `shared`.
    pub(crate) fn start(
        threads: usize,
        pool: &Arc<ShardPool>,
        shared: &Arc<Shared>,
    ) -> std::io::Result<ReactorPool> {
        let threads = threads.max(1);
        let mut injectors = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, WAKE_TOKEN)?;
            let injector = Arc::new(Injector {
                queue: Mutex::new(Vec::new()),
                waker,
            });
            let thread_injector = Arc::clone(&injector);
            let thread_pool = Arc::clone(pool);
            let thread_shared = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name(format!("oc-serve-reactor-{i}"))
                .spawn(move || {
                    ReactorThread::new(poller, thread_injector, thread_pool, thread_shared).run()
                })?;
            injectors.push(injector);
            handles.push(handle);
        }
        Ok(ReactorPool {
            injectors,
            handles: Mutex::new(handles),
            next: AtomicUsize::new(0),
        })
    }

    /// Hands an accepted (non-blocking) socket to a reactor thread. The
    /// caller has already counted it in `serve.connections`.
    pub(crate) fn submit(&self, stream: TcpStream) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.injectors.len();
        self.injectors[i]
            .queue
            .lock()
            .expect("reactor injector lock")
            .push(stream);
        let _ = self.injectors[i].waker.wake();
    }

    /// Wakes every reactor thread (the server's stop flag is already
    /// set) and joins them. After this returns no reactor thread holds a
    /// shard-pool reference, so the caller's `Arc::try_unwrap` drain
    /// takes the clean path.
    pub(crate) fn stop_and_join(&self) {
        for injector in &self.injectors {
            let _ = injector.waker.wake();
        }
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("reactor handles lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A connection's transport: plain, or wrapped in the seeded fault plan
/// (separate read/write schedules, like the threaded frontend).
enum Transport {
    Plain(TcpStream),
    Faulted {
        r: FaultStream<TcpStream>,
        w: FaultStream<TcpStream>,
    },
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.read(buf),
            Transport::Faulted { r, .. } => r.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.write(buf),
            Transport::Faulted { w, .. } => w.write(buf),
        }
    }
}

/// One reactor-owned connection.
struct RConn {
    transport: Transport,
    /// The fd registered with the poller (the read half for faulted
    /// transports; both halves alias one socket).
    fd: RawFd,
    /// This connection's slot index — also its poller token.
    slot: usize,
    acc: LineAccumulator,
    state: ConnState,
    /// Buffered, not-yet-written response bytes (`outbuf[outpos..]`).
    outbuf: Vec<u8>,
    outpos: usize,
    last_activity: Instant,
    /// When the peer stopped accepting writes (`WouldBlock`); cleared on
    /// progress. Exceeding `write_timeout` disconnects.
    blocked_since: Option<Instant>,
    /// Interest currently registered with the poller.
    registered: (bool, bool),
    /// No more reads (peer EOF or idle-close sent); close once the
    /// output buffer drains.
    draining: bool,
}

/// Why a connection is being closed (for the decision to flush first).
enum Close {
    /// Transport error or deadline: drop immediately, pending output is
    /// undeliverable.
    Now,
}

struct ReactorThread {
    poller: Poller,
    injector: Arc<Injector>,
    pool: Arc<ShardPool>,
    shared: Arc<Shared>,
    conns: Vec<Option<RConn>>,
    free: Vec<usize>,
    events: Events,
    /// Event batch copied out of `events` so connection handling can
    /// borrow `self` mutably.
    batch: Vec<(usize, bool, bool)>,
    scratch: Vec<u8>,
    sweep: Duration,
    last_sweep: Instant,
}

impl ReactorThread {
    fn new(
        poller: Poller,
        injector: Arc<Injector>,
        pool: Arc<ShardPool>,
        shared: Arc<Shared>,
    ) -> ReactorThread {
        // Sweep deadlines at a fraction of the tightest one, bounded so
        // an idle reactor neither spins nor sleeps through shutdown
        // fallback (the waker is the primary shutdown signal).
        let tightest = shared.cfg.idle_timeout.min(shared.cfg.write_timeout);
        let sweep = (tightest / 4).clamp(Duration::from_millis(5), Duration::from_millis(500));
        ReactorThread {
            poller,
            injector,
            pool,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            events: Events::with_capacity(1024),
            batch: Vec::new(),
            scratch: vec![0u8; READ_SCRATCH],
            sweep,
            last_sweep: Instant::now(),
        }
    }

    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if self
                .poller
                .wait(&mut self.events, Some(self.sweep))
                .is_err()
            {
                break; // poller failure is unrecoverable for this thread
            }
            self.shared.reactor_wakeups.inc();
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            self.batch.clear();
            let mut woken = false;
            for ev in &self.events {
                if ev.token() == WAKE_TOKEN {
                    woken = true;
                } else {
                    self.batch
                        .push((ev.token(), ev.is_readable(), ev.is_writable()));
                }
            }
            if woken {
                self.injector.waker.drain();
                self.adopt_new();
            }
            for i in 0..self.batch.len() {
                let (slot, readable, writable) = self.batch[i];
                self.handle_event(slot, readable, writable);
                // On hosts with fewer cores than server threads a long
                // event batch starves the shard workers: they are woken
                // by the queue send but cannot preempt this thread until
                // the scheduler's wakeup granularity (milliseconds)
                // elapses, so every chunk enqueued during the batch ages
                // by the rest of the sweep. Yielding between bursts
                // bounds the service-latency tail at roughly one burst.
                if i % YIELD_EVERY == YIELD_EVERY - 1 {
                    std::thread::yield_now();
                }
            }
            if self.last_sweep.elapsed() >= self.sweep {
                self.last_sweep = Instant::now();
                self.sweep_deadlines();
            }
        }
        self.shutdown_conns();
    }

    /// Registers every connection handed over since the last wake.
    fn adopt_new(&mut self) {
        let streams: Vec<TcpStream> =
            std::mem::take(&mut *self.injector.queue.lock().expect("reactor injector lock"));
        for stream in streams {
            self.register_conn(stream);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let conn_id = self.shared.registry.next_conn_id();
        let transport = match &self.shared.cfg.faults {
            Some(plan) => {
                let read_half = match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        self.drop_unregistered(&e);
                        return;
                    }
                };
                Transport::Faulted {
                    r: FaultStream::new(
                        read_half,
                        plan,
                        plan.stream_seed(conn_id * 2),
                        Arc::clone(&self.shared.faults),
                    ),
                    w: FaultStream::new(
                        stream,
                        plan,
                        plan.stream_seed(conn_id * 2 + 1),
                        Arc::clone(&self.shared.faults),
                    ),
                }
            }
            None => Transport::Plain(stream),
        };
        let fd = match &transport {
            Transport::Plain(s) => s.as_raw_fd(),
            Transport::Faulted { r, .. } => r.get_ref().as_raw_fd(),
        };
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if let Err(e) = self.poller.register(fd, slot, Interest::READABLE) {
            self.free.push(slot);
            self.drop_unregistered(&e);
            return;
        }
        self.conns[slot] = Some(RConn {
            transport,
            fd,
            slot,
            acc: LineAccumulator::new(),
            state: ConnState::new(),
            outbuf: Vec::with_capacity(1024),
            outpos: 0,
            last_activity: Instant::now(),
            blocked_since: None,
            registered: (true, false),
            draining: false,
        });
        self.shared.reactor_conns.inc();
    }

    /// A connection failed before it ever joined the interest list; it
    /// was already counted live by the accept loop.
    fn drop_unregistered(&self, err: &std::io::Error) {
        self.shared.accept_errors.inc();
        trace::event(
            "serve.accept.error",
            err.raw_os_error().unwrap_or(0) as u64,
            0,
        );
        self.shared.connections.dec();
    }

    fn handle_event(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return; // closed earlier in this batch
        };
        match self.drive(&mut conn, readable, writable) {
            Ok(()) => self.conns[slot] = Some(conn),
            Err(Close::Now) => self.close(slot, conn),
        }
    }

    fn close(&mut self, slot: usize, conn: RConn) {
        let _ = self.poller.deregister(conn.fd);
        self.free.push(slot);
        self.shared.reactor_conns.dec();
        self.shared.connections.dec();
        drop(conn);
    }

    /// Advances one connection's state machine for a readiness event.
    fn drive(&mut self, conn: &mut RConn, readable: bool, writable: bool) -> Result<(), Close> {
        if writable && conn.pending() > 0 {
            self.try_write(conn)?;
        }
        if readable && !conn.draining && conn.pending() <= OUTBUF_HIGH_WATER {
            self.read_and_process(conn)?;
            self.try_write(conn)?;
        }
        self.update_interest(conn)
    }

    /// Drains readable bytes, feeding complete lines through the shared
    /// protocol path. Responses accumulate in `conn.outbuf`.
    fn read_and_process(&mut self, conn: &mut RConn) -> Result<(), Close> {
        loop {
            match conn.transport.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF: a truncated final line is discarded, pending
                    // responses are still drained before the close.
                    conn.acc.discard_partial();
                    conn.draining = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    let RConn {
                        acc,
                        state,
                        outbuf,
                        transport: _,
                        ..
                    } = conn;
                    let pool = &self.pool;
                    let shared = &self.shared;
                    let fed = acc.feed(&self.scratch[..n], |line| {
                        let req_span = trace::span("serve.request");
                        let keep = process_line(line, state, outbuf, pool, shared)?;
                        drop(req_span);
                        Ok(keep)
                    });
                    match fed {
                        Ok(Feed::More) => {}
                        Ok(Feed::Close) => {
                            conn.draining = true;
                            break;
                        }
                        Ok(Feed::Oversize) => {
                            let RConn { state, outbuf, .. } = conn;
                            let _ = flush_chunk(state, outbuf, &self.pool, &self.shared);
                            let _ = write_resp(outbuf, &mut state.out, &oversize_resp());
                            conn.draining = true;
                            break;
                        }
                        Err(_) => return Err(Close::Now),
                    }
                    if conn.pending() > OUTBUF_HIGH_WATER {
                        break; // backpressure: stop reading until drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(Close::Now),
            }
        }
        // The readable burst has run dry: enqueue the pending observe
        // chunk so its acknowledgements join the output buffer (the
        // reactor analog of the threaded frontend's dry-pipeline flush).
        let RConn { state, outbuf, .. } = conn;
        let _ = flush_chunk(state, outbuf, &self.pool, &self.shared);
        Ok(())
    }

    /// Writes as much buffered output as the socket accepts.
    fn try_write(&mut self, conn: &mut RConn) -> Result<(), Close> {
        while conn.outpos < conn.outbuf.len() {
            match conn.transport.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => return Err(Close::Now),
                Ok(n) => {
                    conn.outpos += n;
                    conn.blocked_since = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.blocked_since.is_none() {
                        conn.blocked_since = Some(Instant::now());
                        self.shared.reactor_writes_blocked.inc();
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(Close::Now),
            }
        }
        if conn.outpos >= conn.outbuf.len() {
            conn.outbuf.clear();
            conn.outpos = 0;
            conn.blocked_since = None;
            if conn.draining {
                return Err(Close::Now); // fully answered: close
            }
        } else if conn.outpos >= 32 * 1024 {
            // Reclaim the written prefix so a slow reader cannot pin a
            // buffer proportional to total bytes ever sent.
            conn.outbuf.drain(..conn.outpos);
            conn.outpos = 0;
        }
        Ok(())
    }

    /// Re-arms the poller registration to match what the connection now
    /// needs: `WRITABLE` while output is pending, `READABLE` unless
    /// draining or above the write high-water mark.
    fn update_interest(&mut self, conn: &mut RConn) -> Result<(), Close> {
        let want_write = conn.pending() > 0;
        let want_read = !conn.draining && conn.pending() <= OUTBUF_HIGH_WATER;
        let want = (want_read, want_write);
        if want == conn.registered {
            return Ok(());
        }
        let interest = match want {
            (_, true) if want_read => Interest::READABLE | Interest::WRITABLE,
            (_, true) => Interest::WRITABLE,
            _ => Interest::READABLE,
        };
        if self
            .poller
            .reregister(conn.fd, conn.slot, interest)
            .is_err()
        {
            return Err(Close::Now);
        }
        conn.registered = want;
        Ok(())
    }

    /// Idle and write deadlines, enforced on the sweep cadence.
    fn sweep_deadlines(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(conn) = &self.conns[slot] else {
                continue;
            };
            let write_dead = conn
                .blocked_since
                .is_some_and(|t| t.elapsed() >= self.shared.cfg.write_timeout);
            let idle =
                !conn.draining && conn.last_activity.elapsed() >= self.shared.cfg.idle_timeout;
            if !write_dead && !idle {
                continue;
            }
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            if write_dead {
                // The peer stopped reading responses past the deadline:
                // pending output is undeliverable, drop the connection
                // (threaded analog: the blocked write times out).
                self.close(slot, conn);
                continue;
            }
            self.shared.timeouts.inc();
            trace::event("serve.conn.idle_close", 0, 0);
            {
                let RConn { state, outbuf, .. } = &mut conn;
                let _ = flush_chunk(state, outbuf, &self.pool, &self.shared);
                let _ = write_resp(outbuf, &mut state.out, &idle_resp());
            }
            conn.draining = true;
            match self
                .try_write(&mut conn)
                .and_then(|()| self.update_interest(&mut conn))
            {
                Ok(()) => self.conns[slot] = Some(conn),
                Err(Close::Now) => self.close(slot, conn),
            }
        }
    }

    /// Stop-flag exit: enqueue pending observe chunks (their outcomes are
    /// drained and counted by the shard shutdown), make one best-effort
    /// write pass, and drop every connection.
    fn shutdown_conns(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            {
                let RConn { state, outbuf, .. } = &mut conn;
                let _ = flush_chunk(state, outbuf, &self.pool, &self.shared);
            }
            let _ = self.try_write(&mut conn);
            let _ = self.poller.deregister(conn.fd);
            self.shared.reactor_conns.dec();
            self.shared.connections.dec();
        }
        self.conns.clear();
        self.free.clear();
    }
}

impl RConn {
    /// Buffered response bytes not yet accepted by the socket.
    fn pending(&self) -> usize {
        self.outbuf.len() - self.outpos
    }
}
