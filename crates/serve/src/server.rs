//! The TCP front end.
//!
//! One readiness-driven accept thread feeds the configured
//! [`Frontend`](crate::config::Frontend): either one handler thread per
//! connection (`conn::serve_lines`) or a small fixed pool of reactor
//! threads multiplexing every connection over `epoll`/`poll` (the
//! `reactor` module). Both frontends route each request line to the
//! owning shard worker (see [`crate::shard`]) and write exactly one
//! response line per request, in request order, so clients may pipeline
//! freely; their wire behavior is bit-identical (`tests/serve_smoke.rs`
//! pins this).
//!
//! `OBSERVE` is acknowledged on *enqueue* (`OK` means "accepted for
//! ingestion", not "applied"): ingestion outcomes of a fire-and-forget
//! sample stream surface in the `STATS` counters (`stale`, `errors`)
//! rather than per request. `PREDICT`/`ADMIT` are request/reply and always
//! reflect every sample enqueued for that machine before them on the same
//! connection.
//!
//! **Connection lifecycle.** Every accepted socket is bounded by an idle
//! deadline (`idle_timeout`, after which the connection is answered
//! `ERR timeout` and closed) and a write deadline (`write_timeout`, so a
//! peer that stops reading its responses cannot pin server resources),
//! and counted against a `max_connections` cap — excess connects get
//! `ERR conn-limit` and are closed immediately (both are retryable;
//! `oc-client` does so). In the threaded frontend the deadlines ride on
//! socket timeouts ([`STOP_POLL`] read polls); in the reactor frontend
//! they are enforced by a periodic deadline sweep (see
//! `docs/PROTOCOL.md` for the timing contract).
//!
//! **Shutdown.** [`Server::shutdown`] raises the stop flag and fires the
//! accept waker (the accept thread is readiness-driven — there is no
//! polling interval to wait out), joins every threaded handler via the
//! registry, wakes and joins the reactor threads, sends a drain marker
//! down every shard queue (FIFO ⇒ all previously queued work is applied
//! first), joins the workers, and returns the final merged
//! [`StatsSnapshot`] — the "flush a final snapshot" part of the
//! contract. Because every frontend thread is joined first, the pool is
//! always drained through the full consuming path;
//! [`ShutdownOutcome::clean`] records that no degraded shared-pool
//! fallback was taken. A truncated final line (EOF without a newline) is
//! discarded as an incomplete request, never dispatched — a client that
//! died mid-write cannot ingest a half request.

use crate::accept::{accept_loop, accept_poller, FrontendRuntime};
use crate::config::{KeyRole, OwnershipMap, RingInfo, ServeConfig};
use crate::error::ServeError;
use crate::fault::FaultCounters;
use crate::proto::{pack_epoch, ErrCode, Request, Response, StatsSnapshot};
use crate::reactor::ReactorPool;
use crate::shard::{key_hash, HandoffEntry, MachineKey, SendFail, ShardMsg, ShardPool};
use oc_telemetry::metrics::{encode_exposition, HistogramSnapshot};
use oc_telemetry::{trace, Counter, Gauge, MetricsRegistry};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the threaded frontend's blocking reads time out to re-check
/// the stop flag and the idle deadline. (The accept loop and the reactor
/// frontend are readiness-driven and do not poll on this interval.)
pub const STOP_POLL: Duration = Duration::from_millis(25);

/// Shared state between the server handle and its threads.
#[derive(Debug)]
pub(crate) struct Shared {
    /// Accept no further connections; frontend threads exit promptly
    /// (handlers at the next poll, reactors at the next wake).
    pub(crate) stop: AtomicBool,
    /// The server's metrics registry — every counter/gauge below lives
    /// here so the `METRICS` verb can expose them by name (see
    /// `docs/OPERATIONS.md` for the dictionary).
    pub(crate) metrics: MetricsRegistry,
    /// `BUSY` rejects (`serve.busy`), counted at the server — they never
    /// reach a shard.
    pub(crate) busy: Arc<Counter>,
    /// Connections closed at the idle deadline (`serve.timeouts`).
    pub(crate) timeouts: Arc<Counter>,
    /// Connections rejected at the cap (`serve.conn_rejects`).
    pub(crate) conn_rejects: Arc<Counter>,
    /// Accept-path failures — a socket dropped because its blocking mode
    /// could not be set, a failed handler spawn, or a listener `accept`
    /// error (`serve.accept.errors`).
    pub(crate) accept_errors: Arc<Counter>,
    /// Live connections (`serve.connections`).
    pub(crate) connections: Arc<Gauge>,
    /// Reactor event-loop iterations (`serve.reactor.wakeups`).
    pub(crate) reactor_wakeups: Arc<Counter>,
    /// Connections currently owned by reactor threads
    /// (`serve.reactor.conns_active`).
    pub(crate) reactor_conns: Arc<Gauge>,
    /// Writes that hit `WouldBlock` and armed write interest — one per
    /// blocked transition, not per retry
    /// (`serve.reactor.writes_blocked`).
    pub(crate) reactor_writes_blocked: Arc<Counter>,
    /// Request lines answered `ERR parse` (`serve.parse_errors`).
    pub(crate) parse_errors: Arc<Counter>,
    /// Per-verb request counters (`serve.requests.<verb>`).
    pub(crate) requests: RequestCounters,
    /// Sub-requests received inside `BATCH` frames
    /// (`serve.batch.requests`).
    pub(crate) batch_requests: Arc<Counter>,
    /// Queue hops saved by the frontend micro-batcher: for every
    /// multi-sample chunk enqueued, `len - 1` (`serve.batch.coalesced`).
    pub(crate) batch_coalesced: Arc<Counter>,
    /// Frontend `PREDICT` result cache.
    pub(crate) cache: PredictCache,
    /// Requests answered `ERR not-mine` because the key's [`KeyRole`] is
    /// [`KeyRole::Remote`] under the cluster ring
    /// (`serve.cluster.not_mine`).
    pub(crate) not_mine: Arc<Counter>,
    /// Server identity stamp: process start (unix seconds) packed with
    /// the ring generation — reported in every `STATS` line. Re-packed
    /// (same start, new generation) when `RINGSET` bumps the ring.
    pub(crate) epoch: AtomicU64,
    /// The process-start half of the epoch, retained so an online
    /// generation bump re-packs with the original start stamp.
    pub(crate) epoch_start: u64,
    /// Ring description served by `RING` and replaced by `RINGSET`.
    pub(crate) ring: Mutex<RingState>,
    /// The live ownership classifier (`None` = standalone). Swapped as a
    /// whole by `RINGSET`; the hot path reads a per-connection cached
    /// clone refreshed on [`Shared::ring_version`] changes, so steady
    /// state costs one atomic load per line, not a lock.
    pub(crate) ownership: Mutex<Option<OwnershipMap>>,
    /// Bumped on every ownership swap; connections compare it against
    /// their cached snapshot's stamp.
    pub(crate) ring_version: AtomicU64,
    /// Faults injected by the server-side chaos plan (if configured).
    pub(crate) faults: Arc<FaultCounters>,
    /// Live connection handlers (threaded frontend) and the connection-id
    /// allocator shared by both frontends.
    pub(crate) registry: Registry,
    /// Per-connection deadlines, the frontend selection, and the optional
    /// fault plan.
    pub(crate) cfg: ConnSettings,
    /// Set when a client sent `SHUTDOWN`; wakes [`Server::wait`].
    pub(crate) shutdown_requested: Mutex<bool>,
    pub(crate) shutdown_cv: Condvar,
}

/// Mutable cluster-ring description, replaced online by `RINGSET`.
#[derive(Debug)]
pub(crate) struct RingState {
    /// Ring geometry; `None` on a standalone server (RING answers `ERR`).
    pub(crate) info: Option<RingInfo>,
    /// Full 64-bit ring generation (the epoch only carries it mod 2^16).
    pub(crate) generation: u64,
    /// Member data-plane addresses in ring-index order; empty until the
    /// supervisor pushes them.
    pub(crate) addrs: Vec<String>,
}

/// One counter per protocol verb, bumped at dispatch.
#[derive(Debug)]
pub(crate) struct RequestCounters {
    pub(crate) observe: Arc<Counter>,
    pub(crate) predict: Arc<Counter>,
    pub(crate) admit: Arc<Counter>,
    pub(crate) stats: Arc<Counter>,
    pub(crate) metrics: Arc<Counter>,
    pub(crate) ring: Arc<Counter>,
    pub(crate) ring_set: Arc<Counter>,
    pub(crate) handoff: Arc<Counter>,
    pub(crate) shutdown: Arc<Counter>,
}

impl RequestCounters {
    fn new(registry: &MetricsRegistry) -> RequestCounters {
        RequestCounters {
            observe: registry.counter("serve.requests.observe"),
            predict: registry.counter("serve.requests.predict"),
            admit: registry.counter("serve.requests.admit"),
            stats: registry.counter("serve.requests.stats"),
            metrics: registry.counter("serve.requests.metrics"),
            ring: registry.counter("serve.requests.ring"),
            ring_set: registry.counter("serve.requests.ringset"),
            handoff: registry.counter("serve.requests.handoff"),
            shutdown: registry.counter("serve.requests.shutdown"),
        }
    }
}

/// Generation stripes in the [`PredictCache`]. Collisions between
/// machines on one stripe only cause spurious invalidation (extra cache
/// misses), never a stale hit.
const GEN_STRIPES: usize = 1024;

/// Frontend `PREDICT` result cache, invalidated by observe-generation
/// stamps.
///
/// Every successfully *enqueued* observe bumps its machine's generation
/// stripe (bump strictly after the enqueue, before the `OK` is written,
/// so a connection's own predicts always see its own acknowledged
/// samples). A predict reads the generation *before* dispatching to the
/// shard and stores the computed peak stamped with that generation; a
/// later predict whose current generation still matches is served the
/// stored bits without the queue hop. A matching generation proves no
/// sample was enqueued for the stripe since the stored value was
/// computed, and predictions are a pure function of ingested state — so
/// a hit is bit-identical to what the shard would recompute, preserving
/// the served-vs-offline identity (including under chaos, where retried
/// observes simply bump again). Races only ever invalidate
/// conservatively: a generation read concurrent with an enqueue misses.
#[derive(Debug)]
pub(crate) struct PredictCache {
    /// Striped observe-generation stamps, indexed by [`key_hash`].
    gens: Vec<AtomicU64>,
    /// Last computed result per machine and shape, stamped with the
    /// generation read before its shard dispatch.
    entries: Mutex<HashMap<MachineKey, CacheSlot>>,
    /// Predicts served from the cache (`serve.predict.cache_hit`).
    pub(crate) hits: Arc<Counter>,
    /// Predicts dispatched to a shard (`serve.predict.cache_miss`).
    pub(crate) misses: Arc<Counter>,
}

/// One machine's cached predictions, one slot per response shape. The
/// scalar and vector forms answer different questions (a blended peak vs
/// per-lane CPU/memory peaks), so a hit must match the query's shape —
/// but both slots share the machine's generation stripe, so any observe
/// (either lane arrives in the same `OBSERVE` line) invalidates both.
#[derive(Debug, Clone, Copy, Default)]
struct CacheSlot {
    /// `(generation, peak)` for `PREDICT cell machine`.
    scalar: Option<(u64, f64)>,
    /// `(generation, cpu_peak, mem_peak)` for `PREDICT cell machine *`.
    vector: Option<(u64, f64, f64)>,
}

impl PredictCache {
    fn new(registry: &MetricsRegistry) -> PredictCache {
        PredictCache {
            gens: (0..GEN_STRIPES).map(|_| AtomicU64::new(0)).collect(),
            entries: Mutex::new(HashMap::new()),
            hits: registry.counter("serve.predict.cache_hit"),
            misses: registry.counter("serve.predict.cache_miss"),
        }
    }

    pub(crate) fn stripe_of(&self, key: &MachineKey) -> usize {
        (key_hash(key) % GEN_STRIPES as u64) as usize
    }

    pub(crate) fn generation(&self, stripe: usize) -> u64 {
        self.gens[stripe].load(Ordering::SeqCst)
    }

    /// Bumps a stripe once for `n` samples. Generations are only ever
    /// compared for equality, so one `+n` invalidates exactly like `n`
    /// separate bumps while costing a single atomic.
    pub(crate) fn bump_n(&self, stripe: usize, n: u64) {
        self.gens[stripe].fetch_add(n, Ordering::SeqCst);
    }

    /// The cached response for `key` in the query's shape, if its stamp
    /// still matches `gen_now`.
    pub(crate) fn lookup(&self, key: &MachineKey, gen_now: u64, vector: bool) -> Option<Response> {
        let entries = self.entries.lock().expect("predict cache lock");
        let slot = entries.get(key)?;
        if vector {
            match slot.vector {
                Some((gen, cpu, mem)) if gen == gen_now => Some(Response::Pred {
                    peak: cpu,
                    mem: Some(mem),
                }),
                _ => None,
            }
        } else {
            match slot.scalar {
                Some((gen, peak)) if gen == gen_now => Some(Response::Pred { peak, mem: None }),
                _ => None,
            }
        }
    }

    /// Stores a shard-computed prediction under its pre-dispatch
    /// generation. The other shape's slot is left alone: its own stamp
    /// already decides whether it is still current.
    pub(crate) fn store(&self, key: MachineKey, gen: u64, peak: f64, mem: Option<f64>) {
        let mut entries = self.entries.lock().expect("predict cache lock");
        let slot = entries.entry(key).or_default();
        match mem {
            Some(mem) => slot.vector = Some((gen, peak, mem)),
            None => slot.scalar = Some((gen, peak)),
        }
    }

    /// Drops every cached entry. Called on a ring install: ownership may
    /// have moved keys, and a full clear is cheap at ring-change
    /// frequency.
    pub(crate) fn clear(&self) {
        self.entries.lock().expect("predict cache lock").clear();
    }
}

/// The slice of [`ServeConfig`] the accept loop and both frontends need.
#[derive(Debug, Clone)]
pub(crate) struct ConnSettings {
    pub(crate) idle_timeout: Duration,
    pub(crate) write_timeout: Duration,
    pub(crate) max_connections: usize,
    pub(crate) faults: Option<crate::fault::FaultPlan>,
    pub(crate) frontend: crate::config::Frontend,
    /// Resolved reactor pool size
    /// ([`ServeConfig::effective_reactor_threads`]).
    pub(crate) reactor_threads_effective: usize,
    /// Whether shards keep the handoff sample log (`HANDOFF` answers
    /// `ERR internal` when disabled).
    pub(crate) handoff_log: bool,
    /// Rebuilds this process's ownership map for a pushed ring geometry
    /// (`RINGSET`); `None` limits pushes to same-geometry metadata.
    pub(crate) ownership_factory: Option<crate::config::OwnershipFactory>,
}

/// Tracks live connection handler threads so shutdown can join every one
/// of them (and the accept loop can enforce the threaded frontend's
/// connection cap). Also allocates connection ids — the fault plan seeds
/// per-connection schedules from them — for both frontends.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    next_id: AtomicU64,
    active: AtomicUsize,
    handles: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Ids whose handler has returned; their (finished) threads are
    /// joined on the next reap so the handle map cannot grow without
    /// bound on a long-running server.
    finished: Mutex<Vec<u64>>,
}

impl Registry {
    /// Claims a connection id without a handler slot (reactor frontend:
    /// connections do not own threads, but their fault schedules still
    /// need distinct seeds).
    pub(crate) fn next_conn_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Claims an id and a live slot for a new threaded connection.
    pub(crate) fn begin(&self) -> u64 {
        self.active.fetch_add(1, Ordering::SeqCst);
        self.next_conn_id()
    }

    /// Records the spawned handler thread for `id`.
    pub(crate) fn register(&self, id: u64, handle: JoinHandle<()>) {
        self.handles
            .lock()
            .expect("registry lock")
            .insert(id, handle);
    }

    /// Releases `id`'s live slot (called by the handler itself on exit).
    pub(crate) fn end(&self, id: u64) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.finished.lock().expect("registry lock").push(id);
    }

    /// Live threaded-connection count.
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Joins handlers that already finished (instant — their threads have
    /// returned). An id whose handle was not yet registered (handler
    /// finished before `register` ran) is retried on a later reap.
    pub(crate) fn reap(&self) {
        let ids: Vec<u64> = std::mem::take(&mut *self.finished.lock().expect("registry lock"));
        if ids.is_empty() {
            return;
        }
        let mut handles = self.handles.lock().expect("registry lock");
        let mut retry = Vec::new();
        for id in ids {
            match handles.remove(&id) {
                Some(h) => {
                    let _ = h.join();
                }
                None => retry.push(id),
            }
        }
        drop(handles);
        if !retry.is_empty() {
            self.finished.lock().expect("registry lock").extend(retry);
        }
    }

    /// Joins every registered handler. Callers must set the stop flag
    /// first so live handlers exit at their next poll.
    pub(crate) fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut map = self.handles.lock().expect("registry lock");
            map.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.finished.lock().expect("registry lock").clear();
    }
}

/// What [`Server::shutdown_outcome`] observed while draining.
#[derive(Debug, Clone)]
pub struct ShutdownOutcome {
    /// The final merged snapshot, identical to what a last `STATS` would
    /// have reported (plus everything drained from the queues).
    pub stats: StatsSnapshot,
    /// `true` when every connection handler and shard worker was joined
    /// and the snapshot came from the full consuming drain — never the
    /// degraded shared-pool fallback.
    pub clean: bool,
}

/// A running peak-prediction service.
///
/// # Examples
///
/// ```no_run
/// use oc_serve::config::ServeConfig;
/// use oc_serve::server::Server;
///
/// let server = Server::start(ServeConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// let stats = server.shutdown();
/// println!("served {} observes", stats.observes);
/// ```
pub struct Server {
    addr: SocketAddr,
    pool: Option<Arc<ShardPool>>,
    accept_handle: Option<JoinHandle<()>>,
    /// Wakes the accept thread out of its readiness wait at shutdown.
    accept_waker: Arc<oc_reactor::Waker>,
    /// The reactor pool, when [`crate::config::Frontend::Reactor`] runs.
    reactor: Option<Arc<ReactorPool>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("frontend", &self.shared.cfg.frontend)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `cfg.addr`, spawns the shard pool, the configured frontend,
    /// and the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid config and
    /// [`ServeError::Io`] for bind failures — including an `Unsupported`
    /// error on targets without a readiness backend (non-Unix), where
    /// neither frontend's accept loop can run.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        cfg.validate()?;
        // Serving tens of thousands of connections needs the fd headroom;
        // best-effort, the connection cap still governs admission.
        let _ = oc_reactor::raise_nofile_limit();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = MetricsRegistry::new();
        let pool = Arc::new(ShardPool::new(&cfg, &metrics)?);
        let epoch_start = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            busy: metrics.counter("serve.busy"),
            timeouts: metrics.counter("serve.timeouts"),
            conn_rejects: metrics.counter("serve.conn_rejects"),
            accept_errors: metrics.counter("serve.accept.errors"),
            connections: metrics.gauge("serve.connections"),
            reactor_wakeups: metrics.counter("serve.reactor.wakeups"),
            reactor_conns: metrics.gauge("serve.reactor.conns_active"),
            reactor_writes_blocked: metrics.counter("serve.reactor.writes_blocked"),
            parse_errors: metrics.counter("serve.parse_errors"),
            requests: RequestCounters::new(&metrics),
            batch_requests: metrics.counter("serve.batch.requests"),
            batch_coalesced: metrics.counter("serve.batch.coalesced"),
            cache: PredictCache::new(&metrics),
            not_mine: metrics.counter("serve.cluster.not_mine"),
            epoch: AtomicU64::new(pack_epoch(epoch_start, cfg.ring_generation)),
            epoch_start,
            ring: Mutex::new(RingState {
                info: cfg.ring_info,
                generation: cfg.ring_generation,
                addrs: Vec::new(),
            }),
            ownership: Mutex::new(cfg.ownership.clone()),
            ring_version: AtomicU64::new(0),
            metrics,
            faults: Arc::new(FaultCounters::default()),
            registry: Registry::default(),
            cfg: ConnSettings {
                idle_timeout: cfg.idle_timeout,
                write_timeout: cfg.write_timeout,
                max_connections: cfg.max_connections,
                faults: cfg.faults.clone(),
                frontend: cfg.frontend,
                reactor_threads_effective: cfg.effective_reactor_threads(),
                handoff_log: cfg.handoff_log,
                ownership_factory: cfg.ownership_factory.clone(),
            },
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        // Readiness-driven accept: the thread sleeps until a connection
        // arrives or the waker fires at shutdown — no stop-poll interval.
        let (poller, waker) = accept_poller(&listener)?;
        let frontend = FrontendRuntime::start(&shared, &pool)?;
        let reactor = frontend.reactor();

        let accept_pool = Arc::clone(&pool);
        let accept_shared = Arc::clone(&shared);
        let accept_waker = Arc::clone(&waker);
        let accept_handle = std::thread::Builder::new()
            .name("oc-serve-accept".to_string())
            .spawn(move || {
                accept_loop(
                    listener,
                    poller,
                    accept_waker,
                    frontend,
                    accept_pool,
                    accept_shared,
                )
            })
            .map_err(ServeError::Io)?;

        Ok(Server {
            addr,
            pool: Some(pool),
            accept_handle: Some(accept_handle),
            accept_waker: waker,
            reactor,
            shared,
        })
    }

    /// Builds a [`Shared`] for driving `process_line` directly in unit
    /// tests (no listener, no frontend threads). Mirrors the
    /// [`Server::start`] construction; the caller supplies the registry
    /// its [`ShardPool`] was built on so shard gauges and connection
    /// counters share one metrics namespace.
    #[cfg(test)]
    pub(crate) fn test_shared(cfg: &ServeConfig, metrics: MetricsRegistry) -> Shared {
        let epoch_start = 0;
        Shared {
            stop: AtomicBool::new(false),
            busy: metrics.counter("serve.busy"),
            timeouts: metrics.counter("serve.timeouts"),
            conn_rejects: metrics.counter("serve.conn_rejects"),
            accept_errors: metrics.counter("serve.accept.errors"),
            connections: metrics.gauge("serve.connections"),
            reactor_wakeups: metrics.counter("serve.reactor.wakeups"),
            reactor_conns: metrics.gauge("serve.reactor.conns_active"),
            reactor_writes_blocked: metrics.counter("serve.reactor.writes_blocked"),
            parse_errors: metrics.counter("serve.parse_errors"),
            requests: RequestCounters::new(&metrics),
            batch_requests: metrics.counter("serve.batch.requests"),
            batch_coalesced: metrics.counter("serve.batch.coalesced"),
            cache: PredictCache::new(&metrics),
            not_mine: metrics.counter("serve.cluster.not_mine"),
            epoch: AtomicU64::new(pack_epoch(epoch_start, cfg.ring_generation)),
            epoch_start,
            ring: Mutex::new(RingState {
                info: cfg.ring_info,
                generation: cfg.ring_generation,
                addrs: Vec::new(),
            }),
            ownership: Mutex::new(cfg.ownership.clone()),
            ring_version: AtomicU64::new(0),
            metrics,
            faults: Arc::new(FaultCounters::default()),
            registry: Registry::default(),
            cfg: ConnSettings {
                idle_timeout: cfg.idle_timeout,
                write_timeout: cfg.write_timeout,
                max_connections: cfg.max_connections,
                faults: cfg.faults.clone(),
                frontend: cfg.frontend,
                reactor_threads_effective: cfg.effective_reactor_threads(),
                handoff_log: cfg.handoff_log,
                ownership_factory: cfg.ownership_factory.clone(),
            },
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        }
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `SHUTDOWN`.
    pub fn wait(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag lock");
        }
    }

    /// Stops accepting, joins every frontend thread, drains every shard
    /// queue, joins the workers, and returns the final merged snapshot.
    pub fn shutdown(self) -> StatsSnapshot {
        self.shutdown_outcome().stats
    }

    /// Like [`Server::shutdown`] but also reports whether the drain took
    /// the clean fully-joined path (it always should; tests assert it).
    pub fn shutdown_outcome(mut self) -> ShutdownOutcome {
        self.finish()
    }

    fn finish(&mut self) -> ShutdownOutcome {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept thread is blocked in a readiness wait; the waker
        // makes the join immediate.
        let _ = self.accept_waker.wake();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Threaded handlers notice `stop` within one read poll; blocked
        // writes hit `write_timeout`. Reactor threads are woken
        // explicitly. Joining all of them here is what guarantees the
        // pool Arc below has exactly one strong reference left.
        self.shared.registry.join_all();
        if let Some(reactor) = self.reactor.take() {
            reactor.stop_and_join();
        }
        let busy = self.shared.busy.get();
        let timeouts = self.shared.timeouts.get();
        let conn_rejects = self.shared.conn_rejects.get();
        let faults = self.shared.faults.total();
        match self.pool.take() {
            Some(pool) => {
                let (mut metrics, clean) = match Arc::try_unwrap(pool) {
                    Ok(pool) => (pool.shutdown(), true),
                    Err(shared_pool) => {
                        // Defensive fallback: with all handlers joined this
                        // is unreachable, but a drain that cannot join the
                        // workers is still better than a hang.
                        (shared_pool.shutdown_shared(), false)
                    }
                };
                metrics.faults += faults;
                metrics.timeouts += timeouts;
                metrics.conn_rejects += conn_rejects;
                // "Predictions served" includes cache hits (the shard
                // counter only sees misses).
                metrics.predicts += self.shared.cache.hits.get();
                let mut stats = metrics.snapshot(busy);
                stats.epoch = self.shared.epoch.load(Ordering::SeqCst);
                ShutdownOutcome { stats, clean }
            }
            None => ShutdownOutcome {
                stats: StatsSnapshot::default(),
                clean: true,
            },
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            let _ = self.finish();
        }
    }
}

/// Answers an over-cap connection with a retryable error and closes it.
pub(crate) fn reject_over_cap(mut stream: TcpStream, shared: &Shared) {
    // Accepted sockets may be non-blocking (reactor frontend); the
    // one-line reject is simplest with blocking writes and a deadline.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let resp = Response::Err {
        code: ErrCode::ConnLimit,
        detail: format!(
            "server at its {}-connection cap; retry later",
            shared.cfg.max_connections
        ),
    };
    let _ = stream.write_all(resp.encode().as_bytes());
    let _ = stream.write_all(b"\n");
}

pub(crate) fn dispatch(req: Request, pool: &ShardPool, shared: &Shared) -> Response {
    match req {
        Request::Observe { .. } => {
            // Observes are coalesced by `process_line` and enqueued via
            // `flush_chunk`; routing one here would skip the generation
            // bump and poison the predict cache.
            unreachable!("OBSERVE is handled by the connection micro-batcher")
        }
        Request::Predict {
            cell,
            machine,
            vector,
        } => {
            shared.requests.predict.inc();
            let key = (cell, machine);
            // Reads are served by the owner and (for failover) the ring
            // successor; a key some other process owns is redirected.
            if role_of(shared, &key) == KeyRole::Remote {
                return not_mine(shared);
            }
            // Both shapes share the cache; a hit must match the query's
            // shape (scalar vs per-lane vector), which [`CacheSlot`]
            // keys on. The generation is read before the shard dispatch,
            // so the stored stamp can only ever be conservative (a sample
            // racing in after this read forces a later miss, never a
            // stale hit) — and an observe on either lane arrives as the
            // same `OBSERVE` line, so one stripe bump invalidates both
            // shapes at once.
            let stripe = shared.cache.stripe_of(&key);
            let gen = shared.cache.generation(stripe);
            if let Some(resp) = shared.cache.lookup(&key, gen, vector) {
                shared.cache.hits.inc();
                return resp;
            }
            shared.cache.misses.inc();
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Predict {
                key: key.clone(),
                vector,
                reply,
                enqueued: Instant::now(),
            };
            let resp = request_reply(pool, shard, msg, rx, shared);
            if let Response::Pred { peak, mem } = resp {
                // Only successful predictions are cached; unknown-machine
                // errors must re-check the shard (an ADMIT may create the
                // machine at any time).
                shared.cache.store(key, gen, peak, mem);
            }
            resp
        }
        Request::Admit {
            cell,
            machine,
            limit,
        } => {
            shared.requests.admit.inc();
            let key = (cell, machine);
            if role_of(shared, &key) == KeyRole::Remote {
                return not_mine(shared);
            }
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Admit {
                key,
                limit,
                reply,
                enqueued: Instant::now(),
            };
            request_reply(pool, shard, msg, rx, shared)
        }
        Request::Stats => {
            shared.requests.stats.inc();
            let mut merged = match merge_shard_metrics(pool) {
                Ok(m) => m,
                Err(resp) => return resp,
            };
            merged.faults += shared.faults.total();
            merged.timeouts += shared.timeouts.get();
            merged.conn_rejects += shared.conn_rejects.get();
            // `predicts` reports predictions *served*: the shard counter
            // only sees cache misses.
            merged.predicts += shared.cache.hits.get();
            let mut snapshot = merged.snapshot(shared.busy.get());
            snapshot.epoch = shared.epoch.load(Ordering::SeqCst);
            Response::Stats(snapshot)
        }
        Request::Metrics => {
            shared.requests.metrics.inc();
            let merged = match merge_shard_metrics(pool) {
                Ok(m) => m,
                Err(resp) => return resp,
            };
            // Registry view (serve.* counters/gauges, queue depths) plus
            // the shard-owned counters and the latency distribution, all
            // in one exposition.
            let mut snap = shared.metrics.snapshot();
            snap.set_counter("serve.observes", merged.observes);
            snap.set_counter("serve.predicts", merged.predicts + shared.cache.hits.get());
            snap.set_counter("serve.admits", merged.admits);
            snap.set_counter("serve.stale", merged.stale);
            snap.set_counter("serve.errors", merged.errors);
            snap.set_counter("serve.faults", shared.faults.total());
            snap.set_gauge("serve.machines", merged.machines as i64);
            snap.set_histogram(
                "serve.latency_us",
                HistogramSnapshot {
                    hist: merged.latency.clone(),
                    count: merged.lat_count,
                    sum: merged.lat_sum_us,
                    max: merged.lat_max_us,
                },
            );
            Response::Metrics {
                exposition: encode_exposition(&snap),
            }
        }
        Request::Ring => {
            shared.requests.ring.inc();
            let ring = shared.ring.lock().expect("ring state lock");
            match ring.info {
                Some(info) => Response::Ring {
                    nodes: info.nodes as u64,
                    vnodes: info.vnodes as u64,
                    seed: info.seed,
                    generation: ring.generation,
                    epoch: shared.epoch.load(Ordering::SeqCst),
                    addrs: ring.addrs.clone(),
                },
                None => Response::Err {
                    code: ErrCode::Internal,
                    detail: "standalone server: no ring installed".to_string(),
                },
            }
        }
        Request::RingSet {
            nodes,
            vnodes,
            seed,
            generation,
            addrs,
        } => {
            shared.requests.ring_set.inc();
            install_ring(shared, nodes, vnodes, seed, generation, addrs)
        }
        Request::Handoff => {
            // The dump is a multi-line response (`HANDOFF <n>` plus n
            // OBSERVE lines); `process_line` streams it directly, like
            // it micro-batches OBSERVE.
            unreachable!("HANDOFF is handled by the connection layer")
        }
        Request::Shutdown => {
            shared.requests.shutdown.inc();
            let mut requested = shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag lock");
            *requested = true;
            shared.shutdown_cv.notify_all();
            Response::Ok
        }
    }
}

/// Installs a pushed ring (`RINGSET`): rejects stale generations,
/// rebuilds the ownership map, re-packs the epoch with the original
/// start stamp, clears the predict cache, and bumps the ownership
/// version so every connection refreshes its cached map.
fn install_ring(
    shared: &Shared,
    nodes: u64,
    vnodes: u64,
    seed: u64,
    generation: u64,
    addrs: Vec<String>,
) -> Response {
    if nodes == 0 || vnodes == 0 {
        return Response::Err {
            code: ErrCode::Parse,
            detail: "RINGSET needs nodes >= 1 and vnodes >= 1".to_string(),
        };
    }
    let mut ring = shared.ring.lock().expect("ring state lock");
    if generation < ring.generation {
        return Response::Err {
            code: ErrCode::Stale,
            detail: format!(
                "pushed generation {generation} is behind installed {}",
                ring.generation
            ),
        };
    }
    let info = RingInfo {
        nodes: nodes as usize,
        vnodes: vnodes as usize,
        seed,
    };
    // A server with an ownership factory recomputes its slot's map for
    // the pushed geometry; one without (ownership handed in fixed at
    // start, or standalone) can only adopt generation/address updates
    // on the geometry it was built with.
    let rebuilt = match &shared.cfg.ownership_factory {
        Some(factory) => match factory.build(info.nodes, info.vnodes, info.seed) {
            Some(map) => map,
            None => {
                return Response::Err {
                    code: ErrCode::Internal,
                    detail: "this process holds no slot in the pushed ring".to_string(),
                }
            }
        },
        None => {
            let standalone = shared.ownership.lock().expect("ownership lock").is_none();
            if ring.info != Some(info) && !standalone {
                return Response::Err {
                    code: ErrCode::Internal,
                    detail: "no ownership factory: cannot adopt a new ring geometry".to_string(),
                };
            }
            ring.info = Some(info);
            ring.generation = generation;
            ring.addrs = addrs;
            drop(ring);
            shared
                .epoch
                .store(pack_epoch(shared.epoch_start, generation), Ordering::SeqCst);
            shared.ring_version.fetch_add(1, Ordering::SeqCst);
            return Response::Ok;
        }
    };
    ring.info = Some(info);
    ring.generation = generation;
    ring.addrs = addrs;
    drop(ring);
    *shared.ownership.lock().expect("ownership lock") = Some(rebuilt);
    shared
        .epoch
        .store(pack_epoch(shared.epoch_start, generation), Ordering::SeqCst);
    // Ownership may have moved keys to or away from this process;
    // cached predictions must not outlive the map they were computed
    // under.
    shared.cache.clear();
    shared.ring_version.fetch_add(1, Ordering::SeqCst);
    Response::Ok
}

/// Collects every shard's handoff log for a `HANDOFF` dump, in shard
/// order. Per-machine sample order is preserved: a machine lives on
/// exactly one shard and each shard's log is append-only.
pub(crate) fn collect_handoff(pool: &ShardPool) -> Result<Vec<HandoffEntry>, Response> {
    let mut all = Vec::new();
    for shard in 0..pool.shards() {
        let (reply, rx) = sync_channel(1);
        if pool.send(shard, ShardMsg::Handoff { reply }).is_err() {
            return Err(shutting_down());
        }
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(mut entries) => all.append(&mut entries),
            Err(_) => {
                return Err(Response::Err {
                    code: ErrCode::Internal,
                    detail: format!("shard {shard} did not answer"),
                })
            }
        }
    }
    Ok(all)
}

/// Collects and merges every shard's metrics snapshot (the `STATS` /
/// `METRICS` read path). Blocking send: snapshots are rare and must not
/// be starved out by a full queue; they queue behind pending work.
fn merge_shard_metrics(pool: &ShardPool) -> Result<crate::metrics::ShardMetrics, Response> {
    let mut merged = crate::metrics::ShardMetrics::default();
    for shard in 0..pool.shards() {
        let (reply, rx) = sync_channel(1);
        if pool.send(shard, ShardMsg::Snapshot { reply }).is_err() {
            return Err(shutting_down());
        }
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(m) => merged.merge(&m),
            Err(_) => {
                return Err(Response::Err {
                    code: ErrCode::Internal,
                    detail: format!("shard {shard} did not answer"),
                })
            }
        }
    }
    Ok(merged)
}

fn request_reply(
    pool: &ShardPool,
    shard: usize,
    msg: ShardMsg,
    rx: std::sync::mpsc::Receiver<Response>,
    shared: &Shared,
) -> Response {
    match pool.try_send(shard, msg) {
        Ok(()) => match rx.recv() {
            Ok(resp) => resp,
            Err(_) => shutting_down(),
        },
        Err(SendFail::Busy) => {
            shared.busy.inc();
            trace::event("serve.busy", shard as u64, 0);
            Response::Busy
        }
        Err(SendFail::Closed) => shutting_down(),
    }
}

pub(crate) fn shutting_down() -> Response {
    Response::Err {
        code: ErrCode::Shutdown,
        detail: "server is shutting down".to_string(),
    }
}

/// This process's role for `key` under its cluster ring
/// ([`KeyRole::Owner`] when standalone). Locks the ownership map — fine
/// for the per-request verbs; the OBSERVE hot path goes through the
/// connection's cached snapshot instead ([`ownership_snapshot`]).
pub(crate) fn role_of(shared: &Shared, key: &MachineKey) -> KeyRole {
    match &*shared.ownership.lock().expect("ownership lock") {
        Some(map) => map.role_of(key_hash(key)),
        None => KeyRole::Owner,
    }
}

/// Version-stamped clone of the live ownership map, for per-connection
/// caching: callers re-snapshot when [`ring_version`] moves past the
/// stamp. The version is read *before* the map, so a concurrent
/// `RINGSET` can only make the pair look older than it is — forcing a
/// refresh, never pinning a stale map.
pub(crate) fn ownership_snapshot(shared: &Shared) -> (u64, Option<OwnershipMap>) {
    let version = shared.ring_version.load(Ordering::SeqCst);
    let map = shared.ownership.lock().expect("ownership lock").clone();
    (version, map)
}

/// Current ownership version stamp (see [`ownership_snapshot`]).
pub(crate) fn ring_version(shared: &Shared) -> u64 {
    shared.ring_version.load(Ordering::SeqCst)
}

/// The `ERR not-mine` redirect, counted in `serve.cluster.not_mine`.
pub(crate) fn not_mine(shared: &Shared) -> Response {
    shared.not_mine.inc();
    Response::Err {
        code: ErrCode::NotMine,
        detail: "key not owned by this process; re-resolve the ring".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Frontend;
    use crate::proto::MAX_LINE_BYTES;
    use std::io::{BufRead, BufReader};
    use std::net::Shutdown;

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Response {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut buf = String::new();
        reader.read_line(&mut buf).unwrap();
        Response::parse(buf.trim_end()).unwrap()
    }

    #[test]
    fn end_to_end_observe_predict_stats() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..30u64 {
            let resp = roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}"));
            assert_eq!(resp, Response::Ok);
        }
        let Response::Pred { peak, .. } = roundtrip(&mut r, &mut w, "PREDICT a 0") else {
            panic!("expected PRED");
        };
        assert!(peak > 0.0 && peak <= 0.5);
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 30);
        assert_eq!(s.predicts, 1);
        assert_eq!(s.machines, 1);
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.conn_rejects, 0);
        assert_eq!(s.faults, 0);
        assert!(s.p50_us >= 0.0);
        drop((r, w));
        let final_stats = server.shutdown();
        assert_eq!(final_stats.observes, 30);
    }

    /// The same smoke flow on the explicitly-selected threaded frontend
    /// (the reactor is the default on Unix).
    #[test]
    fn end_to_end_on_threaded_frontend() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(2)
                .with_frontend(Frontend::Threaded),
        )
        .unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..10u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        assert!(matches!(
            roundtrip(&mut r, &mut w, "PREDICT a 0"),
            Response::Pred { .. }
        ));
        drop((r, w));
        let outcome = server.shutdown_outcome();
        assert!(outcome.clean);
        assert_eq!(outcome.stats.observes, 10);
    }

    #[test]
    fn metrics_verb_exposes_registry_and_shard_state() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..25u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        assert!(matches!(
            roundtrip(&mut r, &mut w, "PREDICT a 0"),
            Response::Pred { .. }
        ));
        roundtrip(&mut r, &mut w, "NONSENSE");
        let Response::Metrics { exposition } = roundtrip(&mut r, &mut w, "METRICS") else {
            panic!("expected METRICS");
        };
        let m = oc_telemetry::metrics::parse_exposition(&exposition).unwrap();
        assert_eq!(m["serve.observes"], 25.0);
        assert_eq!(m["serve.requests.observe"], 25.0);
        assert_eq!(m["serve.predicts"], 1.0);
        assert_eq!(m["serve.requests.predict"], 1.0);
        assert_eq!(m["serve.parse_errors"], 1.0);
        assert_eq!(m["serve.requests.metrics"], 1.0);
        assert_eq!(m["serve.connections"], 1.0, "this connection is live");
        assert_eq!(m["serve.machines"], 1.0);
        assert_eq!(m["serve.busy"], 0.0);
        assert_eq!(m["serve.accept.errors"], 0.0);
        assert!(m.contains_key("serve.reactor.wakeups"));
        assert!(m.contains_key("serve.reactor.conns_active"));
        assert!(m.contains_key("serve.reactor.writes_blocked"));
        assert!(m.contains_key("serve.shard.queue_depth.0"));
        assert!(m.contains_key("serve.shard.queue_depth.1"));
        assert_eq!(m["serve.latency_us.count"], 26.0, "25 observes + 1 predict");
        assert!(m["serve.latency_us.p50"] >= 0.0);
        assert!(m["serve.latency_us.max"] >= m["serve.latency_us.p50"]);
        // The exposition agrees with STATS on the shared counters.
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, m["serve.observes"] as u64);
        assert_eq!(s.predicts, m["serve.predicts"] as u64);
        drop((r, w));
        server.shutdown();
    }

    /// Satellite: vector `PREDICT … *` results participate in the
    /// frontend predict cache. A cached vector hit must be bit-identical
    /// to the shard-computed answer, a scalar query must never be served
    /// vector bits (or vice versa), and an observe on *either* lane —
    /// cpu-only or a cpu,mem pair, both arriving as one `OBSERVE` line —
    /// invalidates the machine's vector entry.
    #[test]
    fn vector_predicts_hit_the_cache_until_either_lane_observes() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let cache_counts = |r: &mut BufReader<TcpStream>, w: &mut TcpStream| {
            let Response::Metrics { exposition } = roundtrip(r, w, "METRICS") else {
                panic!("expected METRICS");
            };
            let m = oc_telemetry::metrics::parse_exposition(&exposition).unwrap();
            (
                m["serve.predict.cache_hit"] as u64,
                m["serve.predict.cache_miss"] as u64,
            )
        };
        for t in 0..8u64 {
            assert_eq!(
                roundtrip(
                    &mut r,
                    &mut w,
                    &format!("OBSERVE a 7 1:0 0.2,0.35 0.5,0.6 {t}")
                ),
                Response::Ok
            );
        }
        let shard_computed = roundtrip(&mut r, &mut w, "PREDICT a 7 *");
        let Response::Pred {
            peak: cpu0,
            mem: Some(mem0),
        } = shard_computed
        else {
            panic!("expected two-lane PRED, got {shard_computed:?}");
        };
        let (h0, m0) = cache_counts(&mut r, &mut w);
        let cached = roundtrip(&mut r, &mut w, "PREDICT a 7 *");
        let (h1, m1) = cache_counts(&mut r, &mut w);
        assert_eq!(h1, h0 + 1, "second vector predict is a cache hit");
        assert_eq!(m1, m0, "no extra shard dispatch");
        let Response::Pred {
            peak: cpu1,
            mem: Some(mem1),
        } = cached
        else {
            panic!("expected two-lane PRED, got {cached:?}");
        };
        assert_eq!(cpu1.to_bits(), cpu0.to_bits(), "cached cpu lane diverged");
        assert_eq!(mem1.to_bits(), mem0.to_bits(), "cached mem lane diverged");

        // A scalar query on the same (warm) machine is a different shape:
        // it must miss the vector slot and come back one-laned.
        let scalar = roundtrip(&mut r, &mut w, "PREDICT a 7");
        let (_, m2) = cache_counts(&mut r, &mut w);
        assert_eq!(m2, m1 + 1, "scalar query never reuses the vector slot");
        assert!(
            matches!(scalar, Response::Pred { mem: None, .. }),
            "scalar shape preserved: {scalar:?}"
        );

        // A cpu-only observe bumps the stripe: the vector entry is stale.
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 7 1:0 0.4 0.5 8"),
            Response::Ok
        );
        let (_, m3) = cache_counts(&mut r, &mut w);
        let recomputed = roundtrip(&mut r, &mut w, "PREDICT a 7 *");
        let (_, m4) = cache_counts(&mut r, &mut w);
        assert_eq!(m4, m3 + 1, "cpu-lane observe invalidated the vector entry");
        assert!(matches!(recomputed, Response::Pred { mem: Some(_), .. }));

        // A mem-carrying observe invalidates again.
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 7 1:0 0.1,0.5 0.5,0.6 9"),
            Response::Ok
        );
        let (_, m5) = cache_counts(&mut r, &mut w);
        let after_mem = roundtrip(&mut r, &mut w, "PREDICT a 7 *");
        let (h6, m6) = cache_counts(&mut r, &mut w);
        assert_eq!(m6, m5 + 1, "mem-lane observe invalidated the vector entry");
        let Response::Pred { mem: Some(_), .. } = after_mem else {
            panic!("expected two-lane PRED, got {after_mem:?}");
        };
        // And the fresh entry serves hits again, bit-identical.
        let warm = roundtrip(&mut r, &mut w, "PREDICT a 7 *");
        let (h7, _) = cache_counts(&mut r, &mut w);
        assert_eq!(h7, h6 + 1);
        let (
            Response::Pred {
                peak: a,
                mem: Some(b),
            },
            Response::Pred {
                peak: c,
                mem: Some(d),
            },
        ) = (after_mem, warm)
        else {
            panic!("expected two-lane PREDs");
        };
        assert_eq!(a.to_bits(), c.to_bits());
        assert_eq!(b.to_bits(), d.to_bits());
        drop((r, w));
        server.shutdown();
    }

    /// The reactor frontend reports its own liveness metrics.
    #[test]
    fn reactor_metrics_track_connection_ownership() {
        if !cfg!(unix) {
            return;
        }
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.2 0.5 1"),
            Response::Ok
        );
        let Response::Metrics { exposition } = roundtrip(&mut r, &mut w, "METRICS") else {
            panic!("expected METRICS");
        };
        let m = oc_telemetry::metrics::parse_exposition(&exposition).unwrap();
        assert_eq!(
            m["serve.reactor.conns_active"], 1.0,
            "this connection is reactor-owned"
        );
        assert!(m["serve.reactor.wakeups"] >= 1.0);
        drop((r, w));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_parse_errors_not_disconnects() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for bad in [
            "NONSENSE",
            "OBSERVE a 0",
            "OBSERVE a 0 1:0 NaN 0.5 1",
            "OBSERVE a 0 badtask 0.1 0.5 1",
        ] {
            let resp = roundtrip(&mut r, &mut w, bad);
            assert!(
                matches!(
                    resp,
                    Response::Err {
                        code: ErrCode::Parse,
                        ..
                    }
                ),
                "{bad}: {resp:?}"
            );
        }
        // The connection is still usable.
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"),
            Response::Ok
        );
        drop((r, w));
        server.shutdown();
    }

    #[test]
    fn oversized_line_closes_connection_with_error() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let long = "X".repeat(MAX_LINE_BYTES * 2);
        w.write_all(long.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        r.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrCode::Parse,
                ..
            }
        ));
        // Server closed its end.
        buf.clear();
        assert_eq!(r.read_line(&mut buf).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_verb_wakes_wait() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let addr = server.addr();
        let (mut r, mut w) = client(addr);
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"),
            Response::Ok
        );
        assert_eq!(roundtrip(&mut r, &mut w, "SHUTDOWN"), Response::Ok);
        server.wait(); // Returns because the client asked for shutdown.
                       // The SHUTDOWN sender's connection is still open — shutdown must
                       // still take the clean path by joining its handler.
        let outcome = server.shutdown_outcome();
        assert!(outcome.clean, "degraded drain with a live SHUTDOWN sender");
        assert_eq!(outcome.stats.observes, 1);
        drop((r, w));
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let mut batch = String::new();
        for t in 0..100u64 {
            batch.push_str(&format!("OBSERVE a 7 1:0 0.2 0.5 {t}\n"));
        }
        batch.push_str("PREDICT a 7\n");
        w.write_all(batch.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        for i in 0..100 {
            buf.clear();
            r.read_line(&mut buf).unwrap();
            assert_eq!(buf.trim_end(), "OK", "response {i}");
        }
        buf.clear();
        r.read_line(&mut buf).unwrap();
        assert!(buf.starts_with("PRED "), "{buf}");
        drop((r, w));
        server.shutdown();
    }

    /// Regression (PR 3): an idle connection used to pin its handler in a
    /// deadline-less `read_line`, forcing `finish()` onto the degraded
    /// `Arc::try_unwrap` fallback. With read polls + registry join, the
    /// full merged snapshot must come back quickly and cleanly.
    #[test]
    fn idle_connection_does_not_block_clean_shutdown() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..5u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        // A second connection that never sends anything at all.
        let (_idle_r, _idle_w) = client(server.addr());
        let t0 = Instant::now();
        let outcome = server.shutdown_outcome();
        assert!(outcome.clean, "idle connection forced the degraded drain");
        assert_eq!(outcome.stats.observes, 5, "full snapshot expected");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            t0.elapsed()
        );
        drop((r, w));
    }

    /// Regression (PR 3): the accept thread used to be woken by a single
    /// fire-and-forget self-connect; if that failed, the join hung. The
    /// waker-driven accept loop needs no wake-up connection at all —
    /// prove shutdown is promptly bounded across repeated start/stop
    /// cycles.
    #[test]
    fn shutdown_never_hangs_on_the_accept_thread() {
        for _ in 0..10 {
            let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
            let t0 = Instant::now();
            let outcome = server.shutdown_outcome();
            assert!(outcome.clean);
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "accept join took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn idle_connection_is_closed_at_the_deadline() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_idle_timeout(Duration::from_millis(120)),
        )
        .unwrap();
        let (mut r, mut w) = client(server.addr());
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.2 0.5 1"),
            Response::Ok
        );
        // Go idle; the server must answer ERR timeout and close.
        let mut buf = String::new();
        r.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::Timeout,
                    ..
                }
            ),
            "{resp:?}"
        );
        buf.clear();
        assert_eq!(
            r.read_line(&mut buf).unwrap(),
            0,
            "connection must be closed"
        );
        // The close is visible in STATS from a fresh connection.
        let (mut r2, mut w2) = client(server.addr());
        let Response::Stats(s) = roundtrip(&mut r2, &mut w2, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.timeouts, 1);
        drop((r2, w2));
        server.shutdown();
    }

    #[test]
    fn connection_cap_rejects_with_retryable_error() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_max_connections(1),
        )
        .unwrap();
        let (mut r1, mut w1) = client(server.addr());
        assert_eq!(
            roundtrip(&mut r1, &mut w1, "OBSERVE a 0 1:0 0.2 0.5 1"),
            Response::Ok
        );
        // Second connection: over the cap.
        let (mut r2, _w2) = client(server.addr());
        let mut buf = String::new();
        r2.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::ConnLimit,
                    ..
                }
            ),
            "{resp:?}"
        );
        buf.clear();
        assert_eq!(r2.read_line(&mut buf).unwrap(), 0);
        // Free the slot; a later connection gets in (the close runs on a
        // server thread and races with us, so poll briefly).
        drop((r1, w1));
        let mut admitted = false;
        for _ in 0..100 {
            // A rejected attempt races with the server's close: the
            // write (or the read) of a still-over-cap probe can fail
            // with a broken pipe instead of delivering the conn-limit
            // error line, so any I/O failure here just means "retry".
            let (mut r3, mut w3) = client(server.addr());
            let sent = w3.write_all(b"STATS\n").and_then(|()| w3.flush());
            let mut buf = String::new();
            if sent.is_err() || r3.read_line(&mut buf).unwrap_or(0) == 0 {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            match Response::parse(buf.trim_end()).unwrap() {
                Response::Stats(s) => {
                    assert!(s.conn_rejects >= 1);
                    admitted = true;
                    break;
                }
                Response::Err {
                    code: ErrCode::ConnLimit,
                    ..
                } => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(admitted, "slot never freed after the first client left");
        server.shutdown();
    }

    /// A peer that dies mid-request must not ingest half a line: the
    /// truncated fragment (which would even parse, with a mangled tick!)
    /// is discarded at EOF.
    #[test]
    fn truncated_final_line_is_discarded_not_dispatched() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut w = stream.try_clone().unwrap();
        // A prefix of "OBSERVE a 0 1:0 0.2 0.5 1234\n" that still parses
        // as a complete OBSERVE with tick 12 — exactly the corruption a
        // mid-write death could cause.
        w.write_all(b"OBSERVE a 0 1:0 0.2 0.5 12").unwrap();
        w.flush().unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Wait for the server to see the EOF and drop the connection.
        let mut buf = String::new();
        let mut r = BufReader::new(stream);
        let _ = r.read_line(&mut buf);
        let (mut r2, mut w2) = client(server.addr());
        let Response::Stats(s) = roundtrip(&mut r2, &mut w2, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 0, "truncated OBSERVE must not be ingested");
        assert_eq!(s.errors, 0);
        drop((r2, w2));
        let final_stats = server.shutdown();
        assert_eq!(final_stats.observes, 0);
    }

    /// Write backpressure: a peer that pipelines a large frame but reads
    /// nothing until the end still gets every response byte, in order.
    #[test]
    fn slow_reader_still_receives_every_response() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let n = 20_000u64;
        let mut frame = String::new();
        for t in 0..n {
            frame.push_str(&format!("OBSERVE a 9 1:0 0.2 0.5 {t}\n"));
        }
        // Blast the whole frame without reading a single response; the
        // server's output buffer must absorb or backpressure it, never
        // drop or reorder.
        w.write_all(frame.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        let mut oks = 0u64;
        let mut busys = 0u64;
        for i in 0..n {
            line.clear();
            r.read_line(&mut line).unwrap();
            match line.trim_end() {
                "OK" => oks += 1,
                "BUSY" => busys += 1,
                other => panic!("response {i}: unexpected {other:?}"),
            }
        }
        assert_eq!(oks + busys, n);
        assert!(oks > 0, "at least some observes must be accepted");
        drop((r, w));
        server.shutdown();
    }

    /// Server-side fault injection: with only delay/partial faults (no
    /// drops) every request still completes, and the injected count
    /// surfaces in STATS.
    #[test]
    fn server_side_faults_surface_in_stats() {
        use crate::fault::{FaultKinds, FaultPlan};
        let plan = FaultPlan::new(7, 0.3).with_kinds(FaultKinds {
            delays: false, // keep the test fast
            partials: true,
            drops: false,
        });
        let server =
            Server::start(ServeConfig::default().with_shards(1).with_faults(plan)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..20u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 20);
        assert!(s.faults > 0, "fault plan never fired");
        drop((r, w));
        let final_stats = server.shutdown();
        assert!(final_stats.faults > 0);
    }

    /// An accepted socket that cannot be switched to the frontend's
    /// blocking mode is counted, not silently dropped — exercised
    /// indirectly: the counter exists and starts at zero.
    #[test]
    fn accept_error_counter_is_registered() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let Response::Metrics { exposition } = roundtrip(&mut r, &mut w, "METRICS") else {
            panic!("expected METRICS");
        };
        let m = oc_telemetry::metrics::parse_exposition(&exposition).unwrap();
        assert_eq!(m["serve.accept.errors"], 0.0);
        drop((r, w));
        server.shutdown();
    }
}
