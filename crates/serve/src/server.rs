//! The TCP front end.
//!
//! One accept thread, one handler thread per connection, `N` shard workers
//! behind bounded queues (see [`crate::shard`]). A handler parses each
//! line, routes it to the owning shard, and writes exactly one response
//! line per request, in request order, so clients may pipeline freely.
//!
//! `OBSERVE` is acknowledged on *enqueue* (`OK` means "accepted for
//! ingestion", not "applied"): ingestion outcomes of a fire-and-forget
//! sample stream surface in the `STATS` counters (`stale`, `errors`)
//! rather than per request. `PREDICT`/`ADMIT` are request/reply and always
//! reflect every sample enqueued for that machine before them on the same
//! connection.
//!
//! **Connection lifecycle.** Every accepted socket gets a read poll
//! deadline ([`STOP_POLL`]) so handlers re-check the server's stop flag
//! and the idle deadline a few dozen times a second instead of blocking
//! forever in `read`; a write deadline (`write_timeout`) so a peer that
//! stops reading its responses cannot pin a handler; and an idle deadline
//! (`idle_timeout`) after which the connection is answered `ERR timeout`
//! and closed. Live handlers are tracked in a registry with a
//! `max_connections` cap — excess connects get `ERR conn-limit` and are
//! closed immediately (both are retryable; `oc-client` does so).
//!
//! **Shutdown.** [`Server::shutdown`] stops the accept loop (non-blocking
//! accept, so no wake-up connection is needed), joins every connection
//! handler via the registry (each exits within one poll interval), sends
//! a drain marker down every shard queue (FIFO ⇒ all previously queued
//! work is applied first), joins the workers, and returns the final
//! merged [`StatsSnapshot`] — the "flush a final snapshot" part of the
//! contract. Because all handlers are joined first, the pool is always
//! drained through the full consuming path; [`ShutdownOutcome::clean`]
//! records that no degraded shared-pool fallback was taken. A truncated
//! final line (EOF without a newline) is discarded as an incomplete
//! request, never dispatched — a client that died mid-write cannot ingest
//! a half request.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::fault::{FaultCounters, FaultStream};
use crate::proto::{
    parse_batch_header, ErrCode, ProtoScratch, Request, Response, StatsSnapshot, MAX_LINE_BYTES,
};
use crate::shard::{
    key_hash, MachineKey, ObserveChunk, ObserveItem, SendFail, ShardMsg, ShardPool, OBS_CHUNK,
};
use oc_telemetry::metrics::{encode_exposition, HistogramSnapshot};
use oc_telemetry::{trace, Counter, Gauge, MetricsRegistry};
use oc_trace::time::Tick;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the stop flag.
/// Bounds both shutdown latency (handlers notice `stop` within one poll)
/// and accept latency for new connections.
pub const STOP_POLL: Duration = Duration::from_millis(25);

/// Shared state between the server handle and its threads.
#[derive(Debug)]
struct Shared {
    /// Accept no further connections; handlers exit at the next poll.
    stop: AtomicBool,
    /// The server's metrics registry — every counter/gauge below lives
    /// here so the `METRICS` verb can expose them by name (see
    /// `docs/OPERATIONS.md` for the dictionary).
    metrics: MetricsRegistry,
    /// `BUSY` rejects (`serve.busy`), counted at the server — they never
    /// reach a shard.
    busy: Arc<Counter>,
    /// Connections closed at the idle deadline (`serve.timeouts`).
    timeouts: Arc<Counter>,
    /// Connections rejected at the cap (`serve.conn_rejects`).
    conn_rejects: Arc<Counter>,
    /// Live connections (`serve.connections`).
    connections: Arc<Gauge>,
    /// Request lines answered `ERR parse` (`serve.parse_errors`).
    parse_errors: Arc<Counter>,
    /// Per-verb request counters (`serve.requests.<verb>`).
    requests: RequestCounters,
    /// Sub-requests received inside `BATCH` frames
    /// (`serve.batch.requests`).
    batch_requests: Arc<Counter>,
    /// Queue hops saved by the frontend micro-batcher: for every
    /// multi-sample chunk enqueued, `len - 1` (`serve.batch.coalesced`).
    batch_coalesced: Arc<Counter>,
    /// Frontend `PREDICT` result cache.
    cache: PredictCache,
    /// Faults injected by the server-side chaos plan (if configured).
    faults: Arc<FaultCounters>,
    /// Live connection handlers.
    registry: Registry,
    /// Per-connection deadlines and the optional fault plan.
    cfg: ConnSettings,
    /// Set when a client sent `SHUTDOWN`; wakes [`Server::wait`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// One counter per protocol verb, bumped at dispatch.
#[derive(Debug)]
struct RequestCounters {
    observe: Arc<Counter>,
    predict: Arc<Counter>,
    admit: Arc<Counter>,
    stats: Arc<Counter>,
    metrics: Arc<Counter>,
    shutdown: Arc<Counter>,
}

impl RequestCounters {
    fn new(registry: &MetricsRegistry) -> RequestCounters {
        RequestCounters {
            observe: registry.counter("serve.requests.observe"),
            predict: registry.counter("serve.requests.predict"),
            admit: registry.counter("serve.requests.admit"),
            stats: registry.counter("serve.requests.stats"),
            metrics: registry.counter("serve.requests.metrics"),
            shutdown: registry.counter("serve.requests.shutdown"),
        }
    }
}

/// Generation stripes in the [`PredictCache`]. Collisions between
/// machines on one stripe only cause spurious invalidation (extra cache
/// misses), never a stale hit.
const GEN_STRIPES: usize = 1024;

/// Frontend `PREDICT` result cache, invalidated by observe-generation
/// stamps.
///
/// Every successfully *enqueued* observe bumps its machine's generation
/// stripe (bump strictly after the enqueue, before the `OK` is written,
/// so a connection's own predicts always see its own acknowledged
/// samples). A predict reads the generation *before* dispatching to the
/// shard and stores the computed peak stamped with that generation; a
/// later predict whose current generation still matches is served the
/// stored bits without the queue hop. A matching generation proves no
/// sample was enqueued for the stripe since the stored value was
/// computed, and predictions are a pure function of ingested state — so
/// a hit is bit-identical to what the shard would recompute, preserving
/// the served-vs-offline identity (including under chaos, where retried
/// observes simply bump again). Races only ever invalidate
/// conservatively: a generation read concurrent with an enqueue misses.
#[derive(Debug)]
struct PredictCache {
    /// Striped observe-generation stamps, indexed by [`key_hash`].
    gens: Vec<AtomicU64>,
    /// Last computed peak per machine, stamped with the generation read
    /// before its shard dispatch.
    entries: Mutex<HashMap<MachineKey, (u64, f64)>>,
    /// Predicts served from the cache (`serve.predict.cache_hit`).
    hits: Arc<Counter>,
    /// Predicts dispatched to a shard (`serve.predict.cache_miss`).
    misses: Arc<Counter>,
}

impl PredictCache {
    fn new(registry: &MetricsRegistry) -> PredictCache {
        PredictCache {
            gens: (0..GEN_STRIPES).map(|_| AtomicU64::new(0)).collect(),
            entries: Mutex::new(HashMap::new()),
            hits: registry.counter("serve.predict.cache_hit"),
            misses: registry.counter("serve.predict.cache_miss"),
        }
    }

    fn stripe_of(&self, key: &MachineKey) -> usize {
        (key_hash(key) % GEN_STRIPES as u64) as usize
    }

    fn generation(&self, stripe: usize) -> u64 {
        self.gens[stripe].load(Ordering::SeqCst)
    }

    fn bump(&self, stripe: usize) {
        self.gens[stripe].fetch_add(1, Ordering::SeqCst);
    }

    /// The cached peak for `key`, if its stamp still matches `gen_now`.
    fn lookup(&self, key: &MachineKey, gen_now: u64) -> Option<f64> {
        let entries = self.entries.lock().expect("predict cache lock");
        match entries.get(key) {
            Some(&(gen, peak)) if gen == gen_now => Some(peak),
            _ => None,
        }
    }

    fn store(&self, key: MachineKey, gen: u64, peak: f64) {
        self.entries
            .lock()
            .expect("predict cache lock")
            .insert(key, (gen, peak));
    }
}

/// The slice of [`ServeConfig`] each connection handler needs.
#[derive(Debug, Clone)]
struct ConnSettings {
    idle_timeout: Duration,
    write_timeout: Duration,
    max_connections: usize,
    faults: Option<crate::fault::FaultPlan>,
}

/// Tracks live connection handler threads so shutdown can join every one
/// of them (and the accept loop can enforce the connection cap).
#[derive(Debug, Default)]
struct Registry {
    next_id: AtomicU64,
    active: AtomicUsize,
    handles: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Ids whose handler has returned; their (finished) threads are
    /// joined on the next reap so the handle map cannot grow without
    /// bound on a long-running server.
    finished: Mutex<Vec<u64>>,
}

impl Registry {
    /// Claims an id and a live slot for a new connection.
    fn begin(&self) -> u64 {
        self.active.fetch_add(1, Ordering::SeqCst);
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records the spawned handler thread for `id`.
    fn register(&self, id: u64, handle: JoinHandle<()>) {
        self.handles
            .lock()
            .expect("registry lock")
            .insert(id, handle);
    }

    /// Releases `id`'s live slot (called by the handler itself on exit).
    fn end(&self, id: u64) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.finished.lock().expect("registry lock").push(id);
    }

    /// Live connection count.
    fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Joins handlers that already finished (instant — their threads have
    /// returned). An id whose handle was not yet registered (handler
    /// finished before `register` ran) is retried on a later reap.
    fn reap(&self) {
        let ids: Vec<u64> = std::mem::take(&mut *self.finished.lock().expect("registry lock"));
        if ids.is_empty() {
            return;
        }
        let mut handles = self.handles.lock().expect("registry lock");
        let mut retry = Vec::new();
        for id in ids {
            match handles.remove(&id) {
                Some(h) => {
                    let _ = h.join();
                }
                None => retry.push(id),
            }
        }
        drop(handles);
        if !retry.is_empty() {
            self.finished.lock().expect("registry lock").extend(retry);
        }
    }

    /// Joins every registered handler. Callers must set the stop flag
    /// first so live handlers exit at their next poll.
    fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut map = self.handles.lock().expect("registry lock");
            map.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.finished.lock().expect("registry lock").clear();
    }
}

/// What [`Server::shutdown_outcome`] observed while draining.
#[derive(Debug, Clone)]
pub struct ShutdownOutcome {
    /// The final merged snapshot, identical to what a last `STATS` would
    /// have reported (plus everything drained from the queues).
    pub stats: StatsSnapshot,
    /// `true` when every connection handler and shard worker was joined
    /// and the snapshot came from the full consuming drain — never the
    /// degraded shared-pool fallback.
    pub clean: bool,
}

/// A running peak-prediction service.
///
/// # Examples
///
/// ```no_run
/// use oc_serve::config::ServeConfig;
/// use oc_serve::server::Server;
///
/// let server = Server::start(ServeConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// let stats = server.shutdown();
/// println!("served {} observes", stats.observes);
/// ```
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    pool: Option<Arc<ShardPool>>,
    accept_handle: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the shard pool and the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid config and
    /// [`ServeError::Io`] for bind failures.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept: the loop polls `stop` on a short interval,
        // so shutdown never depends on a wake-up connection reaching the
        // listener (the old fire-and-forget self-connect could fail and
        // leave the join hanging forever).
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = MetricsRegistry::new();
        let pool = Arc::new(ShardPool::new(&cfg, &metrics)?);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            busy: metrics.counter("serve.busy"),
            timeouts: metrics.counter("serve.timeouts"),
            conn_rejects: metrics.counter("serve.conn_rejects"),
            connections: metrics.gauge("serve.connections"),
            parse_errors: metrics.counter("serve.parse_errors"),
            requests: RequestCounters::new(&metrics),
            batch_requests: metrics.counter("serve.batch.requests"),
            batch_coalesced: metrics.counter("serve.batch.coalesced"),
            cache: PredictCache::new(&metrics),
            metrics,
            faults: Arc::new(FaultCounters::default()),
            registry: Registry::default(),
            cfg: ConnSettings {
                idle_timeout: cfg.idle_timeout,
                write_timeout: cfg.write_timeout,
                max_connections: cfg.max_connections,
                faults: cfg.faults.clone(),
            },
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let accept_pool = Arc::clone(&pool);
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("oc-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_pool, accept_shared))
            .map_err(ServeError::Io)?;

        Ok(Server {
            addr,
            pool: Some(pool),
            accept_handle: Some(accept_handle),
            shared,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `SHUTDOWN`.
    pub fn wait(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag lock");
        }
    }

    /// Stops accepting, joins every connection handler, drains every
    /// shard queue, joins the workers, and returns the final merged
    /// snapshot.
    pub fn shutdown(self) -> StatsSnapshot {
        self.shutdown_outcome().stats
    }

    /// Like [`Server::shutdown`] but also reports whether the drain took
    /// the clean fully-joined path (it always should; tests assert it).
    pub fn shutdown_outcome(mut self) -> ShutdownOutcome {
        self.finish()
    }

    fn finish(&mut self) -> ShutdownOutcome {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop polls `stop`, so the join completes within one
        // poll interval without any wake-up connection.
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Handlers notice `stop` within one read poll; blocked writes hit
        // `write_timeout`. Joining them here is what guarantees the pool
        // Arc below has exactly one strong reference left.
        self.shared.registry.join_all();
        let busy = self.shared.busy.get();
        let timeouts = self.shared.timeouts.get();
        let conn_rejects = self.shared.conn_rejects.get();
        let faults = self.shared.faults.total();
        match self.pool.take() {
            Some(pool) => {
                let (mut metrics, clean) = match Arc::try_unwrap(pool) {
                    Ok(pool) => (pool.shutdown(), true),
                    Err(shared_pool) => {
                        // Defensive fallback: with all handlers joined this
                        // is unreachable, but a drain that cannot join the
                        // workers is still better than a hang.
                        (shared_pool.shutdown_shared(), false)
                    }
                };
                metrics.faults += faults;
                metrics.timeouts += timeouts;
                metrics.conn_rejects += conn_rejects;
                // "Predictions served" includes cache hits (the shard
                // counter only sees misses).
                metrics.predicts += self.shared.cache.hits.get();
                ShutdownOutcome {
                    stats: metrics.snapshot(busy),
                    clean,
                }
            }
            None => ShutdownOutcome {
                stats: StatsSnapshot::default(),
                clean: true,
            },
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            let _ = self.finish();
        }
    }
}

/// Polls the non-blocking listener until the stop flag is set, enforcing
/// the connection cap and reaping finished handlers along the way.
fn accept_loop(listener: TcpListener, pool: Arc<ShardPool>, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets may inherit O_NONBLOCK on some
                // platforms; handlers rely on timeout-based blocking.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                shared.registry.reap();
                if shared.registry.active() >= shared.cfg.max_connections {
                    shared.conn_rejects.inc();
                    trace::event("serve.conn.reject", shared.registry.active() as u64, 0);
                    reject_over_cap(stream, &shared);
                    continue;
                }
                let id = shared.registry.begin();
                shared.connections.inc();
                let pool = Arc::clone(&pool);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("oc-serve-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &pool, &conn_shared, id);
                        conn_shared.registry.end(id);
                        conn_shared.connections.dec();
                    });
                match spawned {
                    Ok(handle) => shared.registry.register(id, handle),
                    Err(_) => {
                        shared.registry.end(id);
                        shared.connections.dec();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                shared.registry.reap();
                std::thread::sleep(STOP_POLL);
            }
            Err(_) => std::thread::sleep(STOP_POLL),
        }
    }
}

/// Answers an over-cap connection with a retryable error and closes it.
fn reject_over_cap(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let resp = Response::Err {
        code: ErrCode::ConnLimit,
        detail: format!(
            "server at its {}-connection cap; retry later",
            shared.cfg.max_connections
        ),
    };
    let _ = stream.write_all(resp.encode().as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Sets deadlines, wraps the stream in the fault plan if configured, and
/// runs the request loop.
fn handle_connection(
    stream: TcpStream,
    pool: &ShardPool,
    shared: &Shared,
    conn_id: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(STOP_POLL))?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let read_half = stream.try_clone()?;
    match &shared.cfg.faults {
        Some(plan) => {
            let r = FaultStream::new(
                read_half,
                plan,
                plan.stream_seed(conn_id * 2),
                Arc::clone(&shared.faults),
            );
            let w = FaultStream::new(
                stream,
                plan,
                plan.stream_seed(conn_id * 2 + 1),
                Arc::clone(&shared.faults),
            );
            serve_lines(r, w, pool, shared)
        }
        None => serve_lines(read_half, stream, pool, shared),
    }
}

/// One step of deadline-aware line reading.
enum ReadStep {
    /// `acc` now ends with `\n`.
    Line,
    /// The read deadline elapsed with no new bytes; poll again.
    Timeout,
    /// Peer closed; any bytes left in `acc` are a truncated request.
    Eof,
    /// `acc` exceeded the line cap without a newline.
    Oversize,
    /// Hard transport error.
    Failed(std::io::Error),
}

/// Appends buffered bytes to `acc` until a newline, EOF, deadline, or the
/// size cap. Bytes are consumed exactly as appended, so a deadline in the
/// middle of a line loses nothing — the next call keeps accumulating.
fn read_line_step<R: BufRead>(reader: &mut R, acc: &mut Vec<u8>) -> ReadStep {
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return ReadStep::Eof,
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return ReadStep::Timeout
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadStep::Failed(e),
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                acc.extend_from_slice(&chunk[..=pos]);
                reader.consume(pos + 1);
                return ReadStep::Line;
            }
            None => {
                let n = chunk.len();
                acc.extend_from_slice(chunk);
                reader.consume(n);
                if acc.len() > MAX_LINE_BYTES {
                    return ReadStep::Oversize;
                }
            }
        }
    }
}

/// Per-connection reusable state: the parse scratch, the response encode
/// buffer, the observe micro-batcher, and `BATCH` framing progress. All
/// buffers are recycled line over line, so the steady-state request path
/// performs no per-request heap allocation.
struct ConnState {
    scratch: ProtoScratch,
    out: Vec<u8>,
    chunk: Box<ObserveChunk>,
    /// Shard the current chunk routes to (meaningful when `chunk.len > 0`).
    chunk_shard: usize,
    /// Sub-request lines still expected in the current `BATCH` frame.
    batch_left: usize,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            scratch: ProtoScratch::new(),
            out: Vec::with_capacity(256),
            chunk: Box::new(ObserveChunk::new()),
            chunk_shard: 0,
            batch_left: 0,
        }
    }
}

/// Encodes `resp` into the recycled buffer and writes it with its
/// newline.
fn write_resp<W: Write>(writer: &mut W, out: &mut Vec<u8>, resp: &Response) -> std::io::Result<()> {
    out.clear();
    resp.encode_into(out);
    out.push(b'\n');
    writer.write_all(out)
}

/// Enqueues the pending observe chunk (if any) and writes the deferred
/// acknowledgements, one per sample, in order. `try_send` is all-or-
/// nothing for the chunk: on `BUSY` every sample is answered `BUSY` and
/// the client retries them individually (ingestion is idempotent, so the
/// partial overlap of a retried run is harmless). Generation stripes are
/// bumped strictly after a successful enqueue and before the `OK`s are
/// written — the predict cache's read-your-writes edge.
fn flush_chunk<W: Write>(
    state: &mut ConnState,
    writer: &mut W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<()> {
    let len = state.chunk.len;
    if len == 0 {
        return Ok(());
    }
    let shard = state.chunk_shard;
    let mut stripes = [0usize; OBS_CHUNK];
    for (s, item) in stripes.iter_mut().zip(&state.chunk.items[..len]) {
        *s = shared.cache.stripe_of(&item.key);
    }
    let sent = if len == 1 {
        // A lone sample skips the chunk wrapper (and its box) entirely.
        let item = std::mem::take(&mut state.chunk.items[0]);
        state.chunk.len = 0;
        pool.try_send(
            shard,
            ShardMsg::Observe {
                key: item.key,
                task: item.task,
                usage: item.usage,
                limit: item.limit,
                tick: item.tick,
                enqueued: state.chunk.enqueued,
            },
        )
    } else {
        let chunk = std::mem::replace(&mut state.chunk, Box::new(ObserveChunk::new()));
        pool.try_send(shard, ShardMsg::ObserveBatch(chunk))
    };
    match sent {
        Ok(()) => {
            if len > 1 {
                shared.batch_coalesced.add(len as u64 - 1);
            }
            for s in &stripes[..len] {
                shared.cache.bump(*s);
            }
            for _ in 0..len {
                writer.write_all(b"OK\n")?;
            }
        }
        Err(SendFail::Busy) => {
            shared.busy.add(len as u64);
            trace::event("serve.busy", shard as u64, len as u64);
            for _ in 0..len {
                writer.write_all(b"BUSY\n")?;
            }
        }
        Err(SendFail::Closed) => {
            let resp = shutting_down();
            for _ in 0..len {
                write_resp(writer, &mut state.out, &resp)?;
            }
        }
    }
    Ok(())
}

/// Handles one complete request line (batch header, batched sub-request,
/// or ordinary request). Returns `Ok(false)` when the connection must
/// close (unrecoverable framing).
fn process_line<W: Write>(
    raw: &[u8],
    state: &mut ConnState,
    writer: &mut W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<bool> {
    let parse_err = |e: &dyn fmt::Display| Response::Err {
        code: ErrCode::Parse,
        detail: e.to_string(),
    };
    let Ok(line) = std::str::from_utf8(raw) else {
        flush_chunk(state, writer, pool, shared)?;
        shared.parse_errors.inc();
        state.batch_left = state.batch_left.saturating_sub(1);
        let resp = parse_err(&"request line is not valid UTF-8");
        write_resp(writer, &mut state.out, &resp)?;
        return Ok(true);
    };
    let line = line.trim_end_matches(['\r', '\n']);
    let in_batch = state.batch_left > 0;
    if in_batch {
        state.batch_left -= 1;
    } else {
        match parse_batch_header(line, &mut state.scratch) {
            // Not a batch header: fall through to the ordinary parse.
            Ok(None) => {}
            Ok(Some(n)) => {
                flush_chunk(state, writer, pool, shared)?;
                shared.batch_requests.add(n as u64);
                state.batch_left = n;
                // The multi-response header goes out up front — the count
                // is known from the frame header, and sub-responses then
                // stream in sub-request order.
                state.out.clear();
                crate::proto::encode_batchr_header_into(n, &mut state.out);
                state.out.push(b'\n');
                writer.write_all(&state.out)?;
                return Ok(true);
            }
            Err(e) => {
                // A malformed BATCH header is unrecoverable: the number
                // of follow-up lines is unknown, so the stream cannot be
                // resynchronized. Answer and close.
                flush_chunk(state, writer, pool, shared)?;
                shared.parse_errors.inc();
                let resp = parse_err(&e);
                write_resp(writer, &mut state.out, &resp)?;
                return Ok(false);
            }
        }
    }
    match Request::parse_in(line, &mut state.scratch) {
        Err(e) => {
            flush_chunk(state, writer, pool, shared)?;
            shared.parse_errors.inc();
            let resp = parse_err(&e);
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
        Ok(Request::Observe {
            cell,
            machine,
            task,
            usage,
            limit,
            tick,
        }) => {
            shared.requests.observe.inc();
            let key = (cell, machine);
            let shard = pool.route(&key);
            if state.chunk.len > 0 && (shard != state.chunk_shard || state.chunk.len == OBS_CHUNK) {
                flush_chunk(state, writer, pool, shared)?;
            }
            if state.chunk.len == 0 {
                state.chunk_shard = shard;
                state.chunk.enqueued = Instant::now();
            }
            let slot = state.chunk.len;
            state.chunk.items[slot] = ObserveItem {
                key,
                task,
                usage,
                limit,
                tick: Tick(tick),
            };
            state.chunk.len = slot + 1;
            Ok(true)
        }
        Ok(req @ (Request::Stats | Request::Metrics | Request::Shutdown)) if in_batch => {
            // Control verbs are not batchable: one per-sub-request parse
            // error, and the rest of the frame proceeds normally.
            flush_chunk(state, writer, pool, shared)?;
            shared.parse_errors.inc();
            let verb = match req {
                Request::Stats => "STATS",
                Request::Metrics => "METRICS",
                _ => "SHUTDOWN",
            };
            let resp = parse_err(&format_args!("{verb} is not allowed inside BATCH"));
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
        Ok(req) => {
            // Ordering: every coalesced sample must be enqueued before a
            // PREDICT/ADMIT/STATS sees the shard, so a connection always
            // reads its own acknowledged writes.
            flush_chunk(state, writer, pool, shared)?;
            let resp = dispatch(req, pool, shared);
            write_resp(writer, &mut state.out, &resp)?;
            Ok(true)
        }
    }
}

/// Serves one connection: one response line per request line, in order
/// (plus one `BATCHR` header line per `BATCH` frame).
fn serve_lines<R: Read, W: Write>(
    read_half: R,
    write_half: W,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(write_half);
    let mut acc: Vec<u8> = Vec::with_capacity(256);
    let mut last_activity = Instant::now();
    let mut seen = 0usize; // bytes of `acc` already counted as activity
    let mut state = ConnState::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // In-flight connections are abandoned at shutdown; anything
            // already queued on the shards is still drained and counted.
            break;
        }
        match read_line_step(&mut reader, &mut acc) {
            ReadStep::Line => {
                last_activity = Instant::now();
                // Spans the whole request: parse, shard round-trip, and
                // response encode. Inert unless tracing is enabled.
                let req_span = trace::span("serve.request");
                let keep_open = process_line(&acc, &mut state, &mut writer, pool, shared)?;
                drop(req_span);
                acc.clear();
                seen = 0;
                if !keep_open {
                    return writer.flush(); // Cannot resynchronize: close.
                }
                // Coalesce and buffer only while another complete request
                // is already waiting: once the pipeline runs dry, enqueue
                // the pending chunk and push every response out.
                if !reader.buffer().contains(&b'\n') {
                    flush_chunk(&mut state, &mut writer, pool, shared)?;
                    writer.flush()?;
                }
            }
            ReadStep::Timeout => {
                flush_chunk(&mut state, &mut writer, pool, shared)?;
                writer.flush()?;
                if acc.len() > seen {
                    // A partial line is still progress; only complete
                    // silence counts toward the idle deadline.
                    seen = acc.len();
                    last_activity = Instant::now();
                }
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    shared.timeouts.inc();
                    trace::event("serve.conn.idle_close", 0, 0);
                    let resp = Response::Err {
                        code: ErrCode::Timeout,
                        detail: "idle past deadline; reconnect to resume".to_string(),
                    };
                    write_resp(&mut writer, &mut state.out, &resp)?;
                    return writer.flush();
                }
            }
            ReadStep::Eof => {
                // A trailing fragment without a newline is a truncated
                // request from a peer that died mid-write: discard it
                // rather than guessing at half a request. (A truncated
                // BATCH frame's already-received sub-requests were
                // dispatched; their responses are simply undeliverable —
                // safe, because ingestion is idempotent.)
                break;
            }
            ReadStep::Oversize => {
                flush_chunk(&mut state, &mut writer, pool, shared)?;
                let resp = Response::Err {
                    code: ErrCode::Parse,
                    detail: format!("line exceeds {MAX_LINE_BYTES} bytes"),
                };
                write_resp(&mut writer, &mut state.out, &resp)?;
                writer.flush()?;
                break; // Cannot resynchronize: close.
            }
            ReadStep::Failed(e) => return Err(e),
        }
    }
    flush_chunk(&mut state, &mut writer, pool, shared)?;
    writer.flush()
}

fn dispatch(req: Request, pool: &ShardPool, shared: &Shared) -> Response {
    match req {
        Request::Observe { .. } => {
            // Observes are coalesced by `process_line` and enqueued via
            // `flush_chunk`; routing one here would skip the generation
            // bump and poison the predict cache.
            unreachable!("OBSERVE is handled by the connection micro-batcher")
        }
        Request::Predict { cell, machine } => {
            shared.requests.predict.inc();
            let key = (cell, machine);
            // The generation is read before the shard dispatch, so the
            // stored stamp can only ever be conservative (a sample racing
            // in after this read forces a later miss, never a stale hit).
            let stripe = shared.cache.stripe_of(&key);
            let gen = shared.cache.generation(stripe);
            if let Some(peak) = shared.cache.lookup(&key, gen) {
                shared.cache.hits.inc();
                return Response::Pred { peak };
            }
            shared.cache.misses.inc();
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Predict {
                key: key.clone(),
                reply,
                enqueued: Instant::now(),
            };
            let resp = request_reply(pool, shard, msg, rx, shared);
            if let Response::Pred { peak } = resp {
                // Only successful predictions are cached; unknown-machine
                // errors must re-check the shard (an ADMIT may create the
                // machine at any time).
                shared.cache.store(key, gen, peak);
            }
            resp
        }
        Request::Admit {
            cell,
            machine,
            limit,
        } => {
            shared.requests.admit.inc();
            let key = (cell, machine);
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Admit {
                key,
                limit,
                reply,
                enqueued: Instant::now(),
            };
            request_reply(pool, shard, msg, rx, shared)
        }
        Request::Stats => {
            shared.requests.stats.inc();
            let mut merged = match merge_shard_metrics(pool) {
                Ok(m) => m,
                Err(resp) => return resp,
            };
            merged.faults += shared.faults.total();
            merged.timeouts += shared.timeouts.get();
            merged.conn_rejects += shared.conn_rejects.get();
            // `predicts` reports predictions *served*: the shard counter
            // only sees cache misses.
            merged.predicts += shared.cache.hits.get();
            Response::Stats(merged.snapshot(shared.busy.get()))
        }
        Request::Metrics => {
            shared.requests.metrics.inc();
            let merged = match merge_shard_metrics(pool) {
                Ok(m) => m,
                Err(resp) => return resp,
            };
            // Registry view (serve.* counters/gauges, queue depths) plus
            // the shard-owned counters and the latency distribution, all
            // in one exposition.
            let mut snap = shared.metrics.snapshot();
            snap.set_counter("serve.observes", merged.observes);
            snap.set_counter("serve.predicts", merged.predicts + shared.cache.hits.get());
            snap.set_counter("serve.admits", merged.admits);
            snap.set_counter("serve.stale", merged.stale);
            snap.set_counter("serve.errors", merged.errors);
            snap.set_counter("serve.faults", shared.faults.total());
            snap.set_gauge("serve.machines", merged.machines as i64);
            snap.set_histogram(
                "serve.latency_us",
                HistogramSnapshot {
                    hist: merged.latency.clone(),
                    count: merged.lat_count,
                    sum: merged.lat_sum_us,
                    max: merged.lat_max_us,
                },
            );
            Response::Metrics {
                exposition: encode_exposition(&snap),
            }
        }
        Request::Shutdown => {
            shared.requests.shutdown.inc();
            let mut requested = shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag lock");
            *requested = true;
            shared.shutdown_cv.notify_all();
            Response::Ok
        }
    }
}

/// Collects and merges every shard's metrics snapshot (the `STATS` /
/// `METRICS` read path). Blocking send: snapshots are rare and must not
/// be starved out by a full queue; they queue behind pending work.
fn merge_shard_metrics(pool: &ShardPool) -> Result<crate::metrics::ShardMetrics, Response> {
    let mut merged = crate::metrics::ShardMetrics::default();
    for shard in 0..pool.shards() {
        let (reply, rx) = sync_channel(1);
        if pool.send(shard, ShardMsg::Snapshot { reply }).is_err() {
            return Err(shutting_down());
        }
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(m) => merged.merge(&m),
            Err(_) => {
                return Err(Response::Err {
                    code: ErrCode::Internal,
                    detail: format!("shard {shard} did not answer"),
                })
            }
        }
    }
    Ok(merged)
}

fn request_reply(
    pool: &ShardPool,
    shard: usize,
    msg: ShardMsg,
    rx: std::sync::mpsc::Receiver<Response>,
    shared: &Shared,
) -> Response {
    match pool.try_send(shard, msg) {
        Ok(()) => match rx.recv() {
            Ok(resp) => resp,
            Err(_) => shutting_down(),
        },
        Err(SendFail::Busy) => {
            shared.busy.inc();
            trace::event("serve.busy", shard as u64, 0);
            Response::Busy
        }
        Err(SendFail::Closed) => shutting_down(),
    }
}

fn shutting_down() -> Response {
    Response::Err {
        code: ErrCode::Shutdown,
        detail: "server is shutting down".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::Shutdown;

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Response {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut buf = String::new();
        reader.read_line(&mut buf).unwrap();
        Response::parse(buf.trim_end()).unwrap()
    }

    #[test]
    fn end_to_end_observe_predict_stats() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..30u64 {
            let resp = roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}"));
            assert_eq!(resp, Response::Ok);
        }
        let Response::Pred { peak } = roundtrip(&mut r, &mut w, "PREDICT a 0") else {
            panic!("expected PRED");
        };
        assert!(peak > 0.0 && peak <= 0.5);
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 30);
        assert_eq!(s.predicts, 1);
        assert_eq!(s.machines, 1);
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.conn_rejects, 0);
        assert_eq!(s.faults, 0);
        assert!(s.p50_us >= 0.0);
        drop((r, w));
        let final_stats = server.shutdown();
        assert_eq!(final_stats.observes, 30);
    }

    #[test]
    fn metrics_verb_exposes_registry_and_shard_state() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..25u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        assert!(matches!(
            roundtrip(&mut r, &mut w, "PREDICT a 0"),
            Response::Pred { .. }
        ));
        roundtrip(&mut r, &mut w, "NONSENSE");
        let Response::Metrics { exposition } = roundtrip(&mut r, &mut w, "METRICS") else {
            panic!("expected METRICS");
        };
        let m = oc_telemetry::metrics::parse_exposition(&exposition).unwrap();
        assert_eq!(m["serve.observes"], 25.0);
        assert_eq!(m["serve.requests.observe"], 25.0);
        assert_eq!(m["serve.predicts"], 1.0);
        assert_eq!(m["serve.requests.predict"], 1.0);
        assert_eq!(m["serve.parse_errors"], 1.0);
        assert_eq!(m["serve.requests.metrics"], 1.0);
        assert_eq!(m["serve.connections"], 1.0, "this connection is live");
        assert_eq!(m["serve.machines"], 1.0);
        assert_eq!(m["serve.busy"], 0.0);
        assert!(m.contains_key("serve.shard.queue_depth.0"));
        assert!(m.contains_key("serve.shard.queue_depth.1"));
        assert_eq!(m["serve.latency_us.count"], 26.0, "25 observes + 1 predict");
        assert!(m["serve.latency_us.p50"] >= 0.0);
        assert!(m["serve.latency_us.max"] >= m["serve.latency_us.p50"]);
        // The exposition agrees with STATS on the shared counters.
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, m["serve.observes"] as u64);
        assert_eq!(s.predicts, m["serve.predicts"] as u64);
        drop((r, w));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_parse_errors_not_disconnects() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for bad in [
            "NONSENSE",
            "OBSERVE a 0",
            "OBSERVE a 0 1:0 NaN 0.5 1",
            "OBSERVE a 0 badtask 0.1 0.5 1",
        ] {
            let resp = roundtrip(&mut r, &mut w, bad);
            assert!(
                matches!(
                    resp,
                    Response::Err {
                        code: ErrCode::Parse,
                        ..
                    }
                ),
                "{bad}: {resp:?}"
            );
        }
        // The connection is still usable.
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"),
            Response::Ok
        );
        drop((r, w));
        server.shutdown();
    }

    #[test]
    fn oversized_line_closes_connection_with_error() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let long = "X".repeat(MAX_LINE_BYTES * 2);
        w.write_all(long.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        r.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrCode::Parse,
                ..
            }
        ));
        // Server closed its end.
        buf.clear();
        assert_eq!(r.read_line(&mut buf).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_verb_wakes_wait() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let addr = server.addr();
        let (mut r, mut w) = client(addr);
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"),
            Response::Ok
        );
        assert_eq!(roundtrip(&mut r, &mut w, "SHUTDOWN"), Response::Ok);
        server.wait(); // Returns because the client asked for shutdown.
                       // The SHUTDOWN sender's connection is still open — shutdown must
                       // still take the clean path by joining its handler.
        let outcome = server.shutdown_outcome();
        assert!(outcome.clean, "degraded drain with a live SHUTDOWN sender");
        assert_eq!(outcome.stats.observes, 1);
        drop((r, w));
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let mut batch = String::new();
        for t in 0..100u64 {
            batch.push_str(&format!("OBSERVE a 7 1:0 0.2 0.5 {t}\n"));
        }
        batch.push_str("PREDICT a 7\n");
        w.write_all(batch.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        for i in 0..100 {
            buf.clear();
            r.read_line(&mut buf).unwrap();
            assert_eq!(buf.trim_end(), "OK", "response {i}");
        }
        buf.clear();
        r.read_line(&mut buf).unwrap();
        assert!(buf.starts_with("PRED "), "{buf}");
        drop((r, w));
        server.shutdown();
    }

    /// Regression (PR 3): an idle connection used to pin its handler in a
    /// deadline-less `read_line`, forcing `finish()` onto the degraded
    /// `Arc::try_unwrap` fallback. With read polls + registry join, the
    /// full merged snapshot must come back quickly and cleanly.
    #[test]
    fn idle_connection_does_not_block_clean_shutdown() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..5u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        // A second connection that never sends anything at all.
        let (_idle_r, _idle_w) = client(server.addr());
        let t0 = Instant::now();
        let outcome = server.shutdown_outcome();
        assert!(outcome.clean, "idle connection forced the degraded drain");
        assert_eq!(outcome.stats.observes, 5, "full snapshot expected");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            t0.elapsed()
        );
        drop((r, w));
    }

    /// Regression (PR 3): the accept thread used to be woken by a single
    /// fire-and-forget self-connect; if that failed, the join hung. The
    /// non-blocking accept loop needs no wake-up at all — prove shutdown
    /// is promptly bounded across repeated start/stop cycles.
    #[test]
    fn shutdown_never_hangs_on_the_accept_thread() {
        for _ in 0..10 {
            let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
            let t0 = Instant::now();
            let outcome = server.shutdown_outcome();
            assert!(outcome.clean);
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "accept join took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn idle_connection_is_closed_at_the_deadline() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_idle_timeout(Duration::from_millis(120)),
        )
        .unwrap();
        let (mut r, mut w) = client(server.addr());
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.2 0.5 1"),
            Response::Ok
        );
        // Go idle; the server must answer ERR timeout and close.
        let mut buf = String::new();
        r.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::Timeout,
                    ..
                }
            ),
            "{resp:?}"
        );
        buf.clear();
        assert_eq!(
            r.read_line(&mut buf).unwrap(),
            0,
            "connection must be closed"
        );
        // The close is visible in STATS from a fresh connection.
        let (mut r2, mut w2) = client(server.addr());
        let Response::Stats(s) = roundtrip(&mut r2, &mut w2, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.timeouts, 1);
        drop((r2, w2));
        server.shutdown();
    }

    #[test]
    fn connection_cap_rejects_with_retryable_error() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_max_connections(1),
        )
        .unwrap();
        let (mut r1, mut w1) = client(server.addr());
        assert_eq!(
            roundtrip(&mut r1, &mut w1, "OBSERVE a 0 1:0 0.2 0.5 1"),
            Response::Ok
        );
        // Second connection: over the cap.
        let (mut r2, _w2) = client(server.addr());
        let mut buf = String::new();
        r2.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::ConnLimit,
                    ..
                }
            ),
            "{resp:?}"
        );
        buf.clear();
        assert_eq!(r2.read_line(&mut buf).unwrap(), 0);
        // Free the slot; a later connection gets in (the handler exit and
        // the accept loop's reap race with us, so poll briefly).
        drop((r1, w1));
        let mut admitted = false;
        for _ in 0..100 {
            let (mut r3, mut w3) = client(server.addr());
            match roundtrip(&mut r3, &mut w3, "STATS") {
                Response::Stats(s) => {
                    assert!(s.conn_rejects >= 1);
                    admitted = true;
                    break;
                }
                Response::Err {
                    code: ErrCode::ConnLimit,
                    ..
                } => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(admitted, "slot never freed after the first client left");
        server.shutdown();
    }

    /// A peer that dies mid-request must not ingest half a line: the
    /// truncated fragment (which would even parse, with a mangled tick!)
    /// is discarded at EOF.
    #[test]
    fn truncated_final_line_is_discarded_not_dispatched() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut w = stream.try_clone().unwrap();
        // A prefix of "OBSERVE a 0 1:0 0.2 0.5 1234\n" that still parses
        // as a complete OBSERVE with tick 12 — exactly the corruption a
        // mid-write death could cause.
        w.write_all(b"OBSERVE a 0 1:0 0.2 0.5 12").unwrap();
        w.flush().unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Wait for the server to see the EOF and drop the connection.
        let mut buf = String::new();
        let mut r = BufReader::new(stream);
        let _ = r.read_line(&mut buf);
        let (mut r2, mut w2) = client(server.addr());
        let Response::Stats(s) = roundtrip(&mut r2, &mut w2, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 0, "truncated OBSERVE must not be ingested");
        assert_eq!(s.errors, 0);
        drop((r2, w2));
        let final_stats = server.shutdown();
        assert_eq!(final_stats.observes, 0);
    }

    /// Server-side fault injection: with only delay/partial faults (no
    /// drops) every request still completes, and the injected count
    /// surfaces in STATS.
    #[test]
    fn server_side_faults_surface_in_stats() {
        use crate::fault::{FaultKinds, FaultPlan};
        let plan = FaultPlan::new(7, 0.3).with_kinds(FaultKinds {
            delays: false, // keep the test fast
            partials: true,
            drops: false,
        });
        let server =
            Server::start(ServeConfig::default().with_shards(1).with_faults(plan)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..20u64 {
            assert_eq!(
                roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}")),
                Response::Ok
            );
        }
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 20);
        assert!(s.faults > 0, "fault plan never fired");
        drop((r, w));
        let final_stats = server.shutdown();
        assert!(final_stats.faults > 0);
    }
}
