//! The TCP front end.
//!
//! One accept thread, one handler thread per connection, `N` shard workers
//! behind bounded queues (see [`crate::shard`]). A handler parses each
//! line, routes it to the owning shard, and writes exactly one response
//! line per request, in request order, so clients may pipeline freely.
//!
//! `OBSERVE` is acknowledged on *enqueue* (`OK` means "accepted for
//! ingestion", not "applied"): ingestion outcomes of a fire-and-forget
//! sample stream surface in the `STATS` counters (`stale`, `errors`)
//! rather than per request. `PREDICT`/`ADMIT` are request/reply and always
//! reflect every sample enqueued for that machine before them on the same
//! connection.
//!
//! Shutdown is graceful: [`Server::shutdown`] stops the accept loop,
//! sends a drain marker down every shard queue (FIFO ⇒ all previously
//! queued work is applied first), joins the workers and returns the final
//! merged [`StatsSnapshot`] — the "flush a final snapshot" part of the
//! contract. In-flight connections then get `ERR shutdown` for new
//! requests.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::proto::{ErrCode, Request, Response, StatsSnapshot, MAX_LINE_BYTES};
use crate::shard::{SendFail, ShardMsg, ShardPool};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared flags between the server handle and its threads.
#[derive(Debug)]
struct Shared {
    /// Accept no further connections.
    stop: AtomicBool,
    /// `BUSY` rejects, counted at the server (they never reach a shard).
    busy: AtomicU64,
    /// Set when a client sent `SHUTDOWN`; wakes [`Server::wait`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running peak-prediction service.
///
/// # Examples
///
/// ```no_run
/// use oc_serve::config::ServeConfig;
/// use oc_serve::server::Server;
///
/// let server = Server::start(ServeConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// let stats = server.shutdown();
/// println!("served {} observes", stats.observes);
/// ```
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    pool: Option<Arc<ShardPool>>,
    accept_handle: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the shard pool and the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid config and
    /// [`ServeError::Io`] for bind failures.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(ShardPool::new(&cfg)?);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            busy: AtomicU64::new(0),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let accept_pool = Arc::clone(&pool);
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("oc-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let pool = Arc::clone(&accept_pool);
                    let shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("oc-serve-conn".to_string())
                        .spawn(move || {
                            let _ = handle_connection(stream, &pool, &shared);
                        });
                }
            })
            .map_err(ServeError::Io)?;

        Ok(Server {
            addr,
            pool: Some(pool),
            accept_handle: Some(accept_handle),
            shared,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `SHUTDOWN`.
    pub fn wait(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag lock");
        }
    }

    /// Stops accepting, drains every shard queue, joins the workers, and
    /// returns the final merged snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.finish()
    }

    fn finish(&mut self) -> StatsSnapshot {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it re-checks the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let busy = self.shared.busy.load(Ordering::SeqCst);
        match self.pool.take() {
            Some(pool) => {
                // Handler threads hold clones of the Arc; once the accept
                // loop is down no *new* connections appear, and existing
                // handlers' sends fail fast after the workers exit.
                let pool = match Arc::try_unwrap(pool) {
                    Ok(pool) => pool,
                    Err(shared_pool) => {
                        // Live connections still reference the pool; drain
                        // via a control shutdown without consuming it.
                        let m = shared_pool.shutdown_shared();
                        return m.snapshot(busy);
                    }
                };
                pool.shutdown().snapshot(busy)
            }
            None => StatsSnapshot::default(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.pool.is_some() {
            let _ = self.finish();
        }
    }
}

/// Serves one connection: one response line per request line, in order.
fn handle_connection(
    stream: TcpStream,
    pool: &ShardPool,
    shared: &Shared,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the line length without trusting the client: read through
        // a `Take` so a newline-less flood cannot grow the buffer.
        let mut limited = reader.take((MAX_LINE_BYTES + 2) as u64);
        let n = limited.read_line(&mut line)?;
        reader = limited.into_inner();
        if n == 0 {
            break; // EOF
        }
        if !line.ends_with('\n') && line.len() > MAX_LINE_BYTES {
            let resp = Response::Err {
                code: ErrCode::Parse,
                detail: format!("line exceeds {MAX_LINE_BYTES} bytes"),
            };
            writer.write_all(resp.encode().as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            break; // Cannot resynchronize: close.
        }
        let resp = match Request::parse(line.trim_end_matches(['\r', '\n'])) {
            Err(e) => Response::Err {
                code: ErrCode::Parse,
                detail: e.to_string(),
            },
            Ok(req) => dispatch(req, pool, shared),
        };
        writer.write_all(resp.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        // Flush only when the pipeline runs dry: pipelined clients get
        // batched writes, interactive clients get an immediate answer.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
    writer.flush()
}

fn dispatch(req: Request, pool: &ShardPool, shared: &Shared) -> Response {
    match req {
        Request::Observe {
            cell,
            machine,
            task,
            usage,
            limit,
            tick,
        } => {
            let key = (cell, machine);
            let shard = pool.route(&key);
            let msg = ShardMsg::Observe {
                key,
                task,
                usage,
                limit,
                tick: oc_trace::time::Tick(tick),
                enqueued: Instant::now(),
            };
            match pool.try_send(shard, msg) {
                Ok(()) => Response::Ok,
                Err(SendFail::Busy) => {
                    shared.busy.fetch_add(1, Ordering::Relaxed);
                    Response::Busy
                }
                Err(SendFail::Closed) => shutting_down(),
            }
        }
        Request::Predict { cell, machine } => {
            let key = (cell, machine);
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Predict {
                key,
                reply,
                enqueued: Instant::now(),
            };
            request_reply(pool, shard, msg, rx, shared)
        }
        Request::Admit {
            cell,
            machine,
            limit,
        } => {
            let key = (cell, machine);
            let shard = pool.route(&key);
            let (reply, rx) = sync_channel(1);
            let msg = ShardMsg::Admit {
                key,
                limit,
                reply,
                enqueued: Instant::now(),
            };
            request_reply(pool, shard, msg, rx, shared)
        }
        Request::Stats => {
            let mut merged = crate::metrics::ShardMetrics::default();
            for shard in 0..pool.shards() {
                let (reply, rx) = sync_channel(1);
                // Blocking send: STATS is rare and must not be starved out
                // by a full queue; it queues behind pending work.
                if pool.send(shard, ShardMsg::Snapshot { reply }).is_err() {
                    return shutting_down();
                }
                match rx.recv_timeout(Duration::from_secs(10)) {
                    Ok(m) => merged.merge(&m),
                    Err(_) => {
                        return Response::Err {
                            code: ErrCode::Internal,
                            detail: format!("shard {shard} did not answer"),
                        }
                    }
                }
            }
            Response::Stats(merged.snapshot(shared.busy.load(Ordering::SeqCst)))
        }
        Request::Shutdown => {
            let mut requested = shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag lock");
            *requested = true;
            shared.shutdown_cv.notify_all();
            Response::Ok
        }
    }
}

fn request_reply(
    pool: &ShardPool,
    shard: usize,
    msg: ShardMsg,
    rx: std::sync::mpsc::Receiver<Response>,
    shared: &Shared,
) -> Response {
    match pool.try_send(shard, msg) {
        Ok(()) => match rx.recv() {
            Ok(resp) => resp,
            Err(_) => shutting_down(),
        },
        Err(SendFail::Busy) => {
            shared.busy.fetch_add(1, Ordering::Relaxed);
            Response::Busy
        }
        Err(SendFail::Closed) => shutting_down(),
    }
}

fn shutting_down() -> Response {
    Response::Err {
        code: ErrCode::Shutdown,
        detail: "server is shutting down".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Response {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut buf = String::new();
        reader.read_line(&mut buf).unwrap();
        Response::parse(buf.trim_end()).unwrap()
    }

    #[test]
    fn end_to_end_observe_predict_stats() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for t in 0..30u64 {
            let resp = roundtrip(&mut r, &mut w, &format!("OBSERVE a 0 1:0 0.2 0.5 {t}"));
            assert_eq!(resp, Response::Ok);
        }
        let Response::Pred { peak } = roundtrip(&mut r, &mut w, "PREDICT a 0") else {
            panic!("expected PRED");
        };
        assert!(peak > 0.0 && peak <= 0.5);
        let Response::Stats(s) = roundtrip(&mut r, &mut w, "STATS") else {
            panic!("expected STATS");
        };
        assert_eq!(s.observes, 30);
        assert_eq!(s.predicts, 1);
        assert_eq!(s.machines, 1);
        assert!(s.p50_us >= 0.0);
        drop((r, w));
        let final_stats = server.shutdown();
        assert_eq!(final_stats.observes, 30);
    }

    #[test]
    fn malformed_lines_get_parse_errors_not_disconnects() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        for bad in [
            "NONSENSE",
            "OBSERVE a 0",
            "OBSERVE a 0 1:0 NaN 0.5 1",
            "OBSERVE a 0 badtask 0.1 0.5 1",
        ] {
            let resp = roundtrip(&mut r, &mut w, bad);
            assert!(
                matches!(resp, Response::Err { code: ErrCode::Parse, .. }),
                "{bad}: {resp:?}"
            );
        }
        // The connection is still usable.
        assert_eq!(
            roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"),
            Response::Ok
        );
        drop((r, w));
        server.shutdown();
    }

    #[test]
    fn oversized_line_closes_connection_with_error() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let long = "X".repeat(MAX_LINE_BYTES * 2);
        w.write_all(long.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        r.read_line(&mut buf).unwrap();
        let resp = Response::parse(buf.trim_end()).unwrap();
        assert!(matches!(resp, Response::Err { code: ErrCode::Parse, .. }));
        // Server closed its end.
        buf.clear();
        assert_eq!(r.read_line(&mut buf).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_verb_wakes_wait() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let addr = server.addr();
        let (mut r, mut w) = client(addr);
        assert_eq!(roundtrip(&mut r, &mut w, "OBSERVE a 0 1:0 0.1 0.5 1"), Response::Ok);
        assert_eq!(roundtrip(&mut r, &mut w, "SHUTDOWN"), Response::Ok);
        server.wait(); // Returns because the client asked for shutdown.
        drop((r, w));
        let stats = server.shutdown();
        assert_eq!(stats.observes, 1);
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let (mut r, mut w) = client(server.addr());
        let mut batch = String::new();
        for t in 0..100u64 {
            batch.push_str(&format!("OBSERVE a 7 1:0 0.2 0.5 {t}\n"));
        }
        batch.push_str("PREDICT a 7\n");
        w.write_all(batch.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut buf = String::new();
        for i in 0..100 {
            buf.clear();
            r.read_line(&mut buf).unwrap();
            assert_eq!(buf.trim_end(), "OK", "response {i}");
        }
        buf.clear();
        r.read_line(&mut buf).unwrap();
        assert!(buf.starts_with("PRED "), "{buf}");
        drop((r, w));
        server.shutdown();
    }
}
