//! The line-delimited wire protocol.
//!
//! Every request and response is one `\n`-terminated line of
//! space-separated ASCII tokens. Grammar (one request per line):
//!
//! ```text
//! OBSERVE <cell> <machine> <job>:<index> <usage> <limit> <tick>
//! PREDICT <cell> <machine>
//! ADMIT   <cell> <machine> <limit>
//! STATS
//! METRICS
//! SHUTDOWN
//! ```
//!
//! and one response line per request:
//!
//! ```text
//! OK                                  observe accepted for ingestion
//! BUSY                                shard queue full — retryable
//! PRED <peak>                         predicted machine peak
//! ADMITTED <yes|no> <projected>       admission verdict + projected peak
//! STATS <key>=<value> ...             service-wide counter snapshot
//! METRICS v=1 <name>=<value> ...      full metrics exposition
//! ERR <code> <detail...>              typed error (parse, stale, ...)
//! ```
//!
//! Floats are encoded with Rust's shortest-round-trip formatting, so
//! `parse(encode(x))` reproduces the exact bit pattern — the property the
//! served-vs-offline bit-identity test relies on, and the property the
//! proptest suite in `tests/proto.rs` pins down.

use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
use std::fmt;

/// Hard cap on the length of one protocol line, in bytes. Connections
/// exceeding it are answered with a parse error and closed.
pub const MAX_LINE_BYTES: usize = 512;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One per-task usage sample (`OBSERVE`).
    Observe {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
        /// The sampled task.
        task: TaskId,
        /// Observed usage for the tick, in capacity units.
        usage: f64,
        /// The task's current limit, in capacity units.
        limit: f64,
        /// The 5-minute tick the sample belongs to.
        tick: u64,
    },
    /// Predict a machine's peak (`PREDICT`).
    Predict {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
    },
    /// Would a task of the given limit fit (`ADMIT`)?
    Admit {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
        /// Limit of the candidate task, in capacity units.
        limit: f64,
    },
    /// Service-wide counter snapshot (`STATS`).
    Stats,
    /// Full metrics exposition (`METRICS`): every registered counter,
    /// gauge, and histogram in the `v=1` text format.
    Metrics,
    /// Ask the server to drain and exit (`SHUTDOWN`).
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Observe accepted for ingestion.
    Ok,
    /// Shard queue full; the request was dropped and may be retried.
    Busy,
    /// Predicted machine peak, in capacity units.
    Pred {
        /// The (clamped) peak prediction.
        peak: f64,
    },
    /// Admission verdict.
    Admitted {
        /// Whether the candidate task fits.
        admit: bool,
        /// Projected peak if admitted (prediction + candidate limit).
        projected: f64,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Metrics exposition: the `v=1 <name>=<value> ...` payload (without
    /// the `METRICS` verb), as produced by
    /// [`oc_telemetry::metrics::encode_exposition`]. Parsing validates the
    /// payload; use [`oc_telemetry::metrics::parse_exposition`] to read
    /// individual values.
    Metrics {
        /// The exposition payload, starting with its `v=1` version token.
        exposition: String,
    },
    /// Typed error.
    Err {
        /// Machine-readable error class.
        code: ErrCode,
        /// Human-readable detail (single line).
        detail: String,
    },
}

/// Machine-readable error classes carried by [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line failed to parse.
    Parse,
    /// The sample's tick was already flushed (out-of-order beyond a tick).
    Stale,
    /// The sample's tick would synthesize too many empty ticks.
    Gap,
    /// `PREDICT` for a machine the service has never observed.
    UnknownMachine,
    /// The server is shutting down.
    Shutdown,
    /// The connection sat idle past the server's deadline and was closed
    /// (retryable: reconnect and resend).
    Timeout,
    /// The server's connection cap was reached (retryable: reconnect
    /// after a backoff).
    ConnLimit,
    /// Internal error (shard died, bad state).
    Internal,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::Stale => "stale",
            ErrCode::Gap => "gap",
            ErrCode::UnknownMachine => "unknown-machine",
            ErrCode::Shutdown => "shutdown",
            ErrCode::Timeout => "timeout",
            ErrCode::ConnLimit => "conn-limit",
            ErrCode::Internal => "internal",
        }
    }

    /// Parses the wire token.
    pub fn parse(token: &str) -> Option<ErrCode> {
        Some(match token {
            "parse" => ErrCode::Parse,
            "stale" => ErrCode::Stale,
            "gap" => ErrCode::Gap,
            "unknown-machine" => ErrCode::UnknownMachine,
            "shutdown" => ErrCode::Shutdown,
            "timeout" => ErrCode::Timeout,
            "conn-limit" => ErrCode::ConnLimit,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

/// Service-wide counters, encoded as the `STATS` response line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Samples ingested (excludes stale/invalid rejects).
    pub observes: u64,
    /// Predictions served.
    pub predicts: u64,
    /// Admission checks served.
    pub admits: u64,
    /// Requests rejected with `BUSY` (bounded-queue backpressure).
    pub busy: u64,
    /// Samples rejected as stale.
    pub stale: u64,
    /// Other typed errors.
    pub errors: u64,
    /// Machines with live state.
    pub machines: u64,
    /// Faults injected by the server's own fault-injection plan (0 unless
    /// chaos testing is configured).
    pub faults: u64,
    /// Connections closed for exceeding the idle deadline.
    pub timeouts: u64,
    /// Connections rejected at the max-connections cap.
    pub conn_rejects: u64,
    /// Median shard service latency (enqueue → handled), microseconds.
    pub p50_us: f64,
    /// 99th-percentile shard service latency, microseconds.
    pub p99_us: f64,
    /// Mean shard service latency, microseconds.
    pub mean_us: f64,
    /// Maximum shard service latency, microseconds.
    pub max_us: f64,
}

/// Typed wire-protocol errors. Malformed input never panics; it produces
/// one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was empty or whitespace-only.
    Empty,
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong {
        /// Observed length in bytes.
        len: usize,
    },
    /// The first token was not a known verb.
    UnknownVerb {
        /// The offending token.
        verb: String,
    },
    /// Wrong number of operands for the verb.
    Arity {
        /// The verb.
        verb: &'static str,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Field name.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// A numeric field parsed but was non-finite or negative.
    OutOfDomain {
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A task id was not of the form `<job>:<index>`.
    BadTaskId {
        /// The offending token.
        token: String,
    },
    /// A response line did not match any response form.
    BadResponse {
        /// The offending line (truncated).
        line: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty line"),
            ProtoError::LineTooLong { len } => {
                write!(f, "line of {len} bytes exceeds {MAX_LINE_BYTES}")
            }
            ProtoError::UnknownVerb { verb } => write!(f, "unknown verb '{verb}'"),
            ProtoError::Arity {
                verb,
                expected,
                got,
            } => write!(f, "{verb} takes {expected} operands, got {got}"),
            ProtoError::BadNumber { field, token } => {
                write!(f, "field {field}: '{token}' is not a number")
            }
            ProtoError::OutOfDomain { field, value } => {
                write!(f, "field {field}: {value} must be finite and >= 0")
            }
            ProtoError::BadTaskId { token } => {
                write!(f, "task id '{token}' is not <job>:<index>")
            }
            ProtoError::BadResponse { line } => write!(f, "unparseable response '{line}'"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn parse_f64(field: &'static str, token: &str) -> Result<f64, ProtoError> {
    let v: f64 = token.parse().map_err(|_| ProtoError::BadNumber {
        field,
        token: token.to_string(),
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(ProtoError::OutOfDomain { field, value: v });
    }
    Ok(v)
}

fn parse_u64(field: &'static str, token: &str) -> Result<u64, ProtoError> {
    token.parse().map_err(|_| ProtoError::BadNumber {
        field,
        token: token.to_string(),
    })
}

fn parse_machine(token: &str) -> Result<MachineId, ProtoError> {
    token
        .parse()
        .map(MachineId)
        .map_err(|_| ProtoError::BadNumber {
            field: "machine",
            token: token.to_string(),
        })
}

fn parse_task(token: &str) -> Result<TaskId, ProtoError> {
    let bad = || ProtoError::BadTaskId {
        token: token.to_string(),
    };
    let (job, index) = token.split_once(':').ok_or_else(bad)?;
    let job: u64 = job.parse().map_err(|_| bad())?;
    let index: u32 = index.parse().map_err(|_| bad())?;
    Ok(TaskId::new(JobId(job), index))
}

fn expect_arity(verb: &'static str, operands: &[&str], expected: usize) -> Result<(), ProtoError> {
    if operands.len() != expected {
        return Err(ProtoError::Arity {
            verb,
            expected,
            got: operands.len(),
        });
    }
    Ok(())
}

impl Request {
    /// Parses one request line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; malformed input never panics.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        if line.len() > MAX_LINE_BYTES {
            return Err(ProtoError::LineTooLong { len: line.len() });
        }
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or(ProtoError::Empty)?;
        let operands: Vec<&str> = tokens.collect();
        match verb {
            "OBSERVE" => {
                expect_arity("OBSERVE", &operands, 6)?;
                Ok(Request::Observe {
                    cell: CellId::new(operands[0]),
                    machine: parse_machine(operands[1])?,
                    task: parse_task(operands[2])?,
                    usage: parse_f64("usage", operands[3])?,
                    limit: parse_f64("limit", operands[4])?,
                    tick: parse_u64("tick", operands[5])?,
                })
            }
            "PREDICT" => {
                expect_arity("PREDICT", &operands, 2)?;
                Ok(Request::Predict {
                    cell: CellId::new(operands[0]),
                    machine: parse_machine(operands[1])?,
                })
            }
            "ADMIT" => {
                expect_arity("ADMIT", &operands, 3)?;
                Ok(Request::Admit {
                    cell: CellId::new(operands[0]),
                    machine: parse_machine(operands[1])?,
                    limit: parse_f64("limit", operands[2])?,
                })
            }
            "STATS" => {
                expect_arity("STATS", &operands, 0)?;
                Ok(Request::Stats)
            }
            "METRICS" => {
                expect_arity("METRICS", &operands, 0)?;
                Ok(Request::Metrics)
            }
            "SHUTDOWN" => {
                expect_arity("SHUTDOWN", &operands, 0)?;
                Ok(Request::Shutdown)
            }
            other => Err(ProtoError::UnknownVerb {
                verb: other.to_string(),
            }),
        }
    }

    /// Encodes the request as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Observe {
                cell,
                machine,
                task,
                usage,
                limit,
                tick,
            } => format!(
                "OBSERVE {} {} {}:{} {} {} {}",
                cell.name(),
                machine.0,
                task.job.0,
                task.index,
                usage,
                limit,
                tick
            ),
            Request::Predict { cell, machine } => {
                format!("PREDICT {} {}", cell.name(), machine.0)
            }
            Request::Admit {
                cell,
                machine,
                limit,
            } => format!("ADMIT {} {} {}", cell.name(), machine.0, limit),
            Request::Stats => "STATS".to_string(),
            Request::Metrics => "METRICS".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// Key/value pairs of the `STATS` line, in encode order.
const STATS_KEYS: [&str; 14] = [
    "observes",
    "predicts",
    "admits",
    "busy",
    "stale",
    "errors",
    "machines",
    "faults",
    "timeouts",
    "conn_rejects",
    "p50_us",
    "p99_us",
    "mean_us",
    "max_us",
];

impl StatsSnapshot {
    /// The `k=v` payload of a `STATS` response line, without the verb.
    pub fn encode_fields(&self) -> String {
        format!(
            "observes={} predicts={} admits={} busy={} stale={} errors={} machines={} \
             faults={} timeouts={} conn_rejects={} p50_us={} p99_us={} mean_us={} max_us={}",
            self.observes,
            self.predicts,
            self.admits,
            self.busy,
            self.stale,
            self.errors,
            self.machines,
            self.faults,
            self.timeouts,
            self.conn_rejects,
            self.p50_us,
            self.p99_us,
            self.mean_us,
            self.max_us
        )
    }

    fn parse_fields(operands: &[&str]) -> Option<StatsSnapshot> {
        if operands.len() != STATS_KEYS.len() {
            return None;
        }
        let mut s = StatsSnapshot::default();
        for (key, token) in STATS_KEYS.iter().zip(operands) {
            let (k, v) = token.split_once('=')?;
            if k != *key {
                return None;
            }
            match *key {
                "observes" => s.observes = v.parse().ok()?,
                "predicts" => s.predicts = v.parse().ok()?,
                "admits" => s.admits = v.parse().ok()?,
                "busy" => s.busy = v.parse().ok()?,
                "stale" => s.stale = v.parse().ok()?,
                "errors" => s.errors = v.parse().ok()?,
                "machines" => s.machines = v.parse().ok()?,
                "faults" => s.faults = v.parse().ok()?,
                "timeouts" => s.timeouts = v.parse().ok()?,
                "conn_rejects" => s.conn_rejects = v.parse().ok()?,
                "p50_us" => s.p50_us = v.parse().ok()?,
                "p99_us" => s.p99_us = v.parse().ok()?,
                "mean_us" => s.mean_us = v.parse().ok()?,
                "max_us" => s.max_us = v.parse().ok()?,
                _ => unreachable!("key list is fixed"),
            }
        }
        Some(s)
    }
}

impl Response {
    /// Parses one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; malformed input never panics.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or(ProtoError::Empty)?;
        let operands: Vec<&str> = tokens.collect();
        let bad = || ProtoError::BadResponse {
            line: line.chars().take(80).collect(),
        };
        match verb {
            "OK" if operands.is_empty() => Ok(Response::Ok),
            "BUSY" if operands.is_empty() => Ok(Response::Busy),
            "PRED" => {
                expect_arity("PRED", &operands, 1)?;
                Ok(Response::Pred {
                    peak: parse_f64("peak", operands[0])?,
                })
            }
            "ADMITTED" => {
                expect_arity("ADMITTED", &operands, 2)?;
                let admit = match operands[0] {
                    "yes" => true,
                    "no" => false,
                    _ => return Err(bad()),
                };
                Ok(Response::Admitted {
                    admit,
                    projected: parse_f64("projected", operands[1])?,
                })
            }
            "STATS" => StatsSnapshot::parse_fields(&operands)
                .map(Response::Stats)
                .ok_or_else(bad),
            "METRICS" => {
                let exposition = operands.join(" ");
                if oc_telemetry::metrics::parse_exposition(&exposition).is_none() {
                    return Err(bad());
                }
                Ok(Response::Metrics { exposition })
            }
            "ERR" => {
                if operands.is_empty() {
                    return Err(bad());
                }
                let code = ErrCode::parse(operands[0]).ok_or_else(bad)?;
                Ok(Response::Err {
                    code,
                    detail: operands[1..].join(" "),
                })
            }
            _ => Err(bad()),
        }
    }

    /// Encodes the response as one line (no trailing newline). Error
    /// details are flattened to a single line.
    pub fn encode(&self) -> String {
        match self {
            Response::Ok => "OK".to_string(),
            Response::Busy => "BUSY".to_string(),
            Response::Pred { peak } => format!("PRED {peak}"),
            Response::Admitted { admit, projected } => {
                format!(
                    "ADMITTED {} {}",
                    if *admit { "yes" } else { "no" },
                    projected
                )
            }
            Response::Stats(s) => format!("STATS {}", s.encode_fields()),
            Response::Metrics { exposition } => format!("METRICS {exposition}"),
            Response::Err { code, detail } => {
                let detail: String = detail
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                if detail.is_empty() {
                    format!("ERR {}", code.as_str())
                } else {
                    format!("ERR {} {}", code.as_str(), detail)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_round_trip() {
        let req = Request::Observe {
            cell: CellId::new("a"),
            machine: MachineId(3),
            task: TaskId::new(JobId(17), 2),
            usage: 0.125,
            limit: 0.5,
            tick: 42,
        };
        let line = req.encode();
        assert_eq!(line, "OBSERVE a 3 17:2 0.125 0.5 42");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn float_encoding_is_bit_exact() {
        let peak = 0.1 + 0.2; // not representable "nicely"
        let r = Response::Pred { peak };
        let Response::Pred { peak: back } = Response::parse(&r.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(peak.to_bits(), back.to_bits());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(Request::parse(""), Err(ProtoError::Empty));
        assert_eq!(Request::parse("   "), Err(ProtoError::Empty));
        assert!(matches!(
            Request::parse("FROBNICATE a 1"),
            Err(ProtoError::UnknownVerb { .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 0.5 0.5"),
            Err(ProtoError::Arity {
                verb: "OBSERVE",
                expected: 6,
                got: 5
            })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 NaN 0.5 7"),
            Err(ProtoError::OutOfDomain { field: "usage", .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 -0.5 0.5 7"),
            Err(ProtoError::OutOfDomain { field: "usage", .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 20 0.5 0.5 7"),
            Err(ProtoError::BadTaskId { .. })
        ));
        assert!(matches!(
            Request::parse("PREDICT a x"),
            Err(ProtoError::BadNumber {
                field: "machine",
                ..
            })
        ));
        let long = format!("PREDICT a {}", "9".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            Request::parse(&long),
            Err(ProtoError::LineTooLong { .. })
        ));
    }

    #[test]
    fn stats_round_trip() {
        let s = StatsSnapshot {
            observes: 10,
            predicts: 2,
            admits: 1,
            busy: 3,
            stale: 0,
            errors: 1,
            machines: 4,
            faults: 2,
            timeouts: 1,
            conn_rejects: 5,
            p50_us: 12.5,
            p99_us: 99.25,
            mean_us: 20.75,
            max_us: 1000.0,
        };
        let r = Response::Stats(s.clone());
        assert_eq!(Response::parse(&r.encode()).unwrap(), Response::Stats(s));
    }

    #[test]
    fn metrics_round_trip() {
        assert_eq!(Request::parse("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.encode(), "METRICS");
        let r = Response::Metrics {
            exposition: "v=1 serve.busy=3 serve.latency_us.p50=12.5".to_string(),
        };
        assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        // A payload that is not a valid exposition is rejected at parse.
        assert!(Response::parse("METRICS v=2 a=1").is_err());
        assert!(Response::parse("METRICS nonsense").is_err());
    }

    #[test]
    fn err_detail_keeps_spaces_and_strips_newlines() {
        let r = Response::Err {
            code: ErrCode::Stale,
            detail: "tick 5 already\nflushed".into(),
        };
        let line = r.encode();
        assert!(!line.contains('\n'));
        let back = Response::parse(&line).unwrap();
        assert_eq!(
            back,
            Response::Err {
                code: ErrCode::Stale,
                detail: "tick 5 already flushed".into()
            }
        );
    }
}
