//! The line-delimited wire protocol.
//!
//! Every request and response is one `\n`-terminated line of
//! space-separated ASCII tokens. Grammar (one request per line):
//!
//! ```text
//! OBSERVE <cell> <machine> <job>:<index> <usage> <limit> <tick>
//! OBSERVE <cell> <machine> <job>:<index> <cpu>,<mem> <cpu>,<mem> <tick>
//! PREDICT <cell> <machine> [*]
//! ADMIT   <cell> <machine> <limit>
//! STATS
//! METRICS
//! RING
//! RINGSET <nodes> <vnodes> <seed> <generation> <addr,addr,...|->
//! HANDOFF
//! SHUTDOWN
//! ```
//!
//! and one response line per request:
//!
//! ```text
//! OK                                  observe accepted for ingestion
//! BUSY                                shard queue full — retryable
//! PRED <peak>                         predicted machine peak (CPU)
//! PRED <peak>,<mem>                   per-resource peaks (vector PREDICT)
//! ADMITTED <yes|no> <projected>       admission verdict + projected peak
//! STATS <key>=<value> ...             service-wide counter snapshot
//! METRICS v=1 <name>=<value> ...      full metrics exposition
//! RING <nodes> <vnodes> <seed> <generation> <epoch> <addrs|->
//!                                     current ring description
//! HANDOFF <n>                         header; n OBSERVE lines follow
//! ERR <code> <detail...>              typed error (parse, stale, ...)
//! ```
//!
//! Floats are encoded with Rust's shortest-round-trip formatting, so
//! `parse(encode(x))` reproduces the exact bit pattern — the property the
//! served-vs-offline bit-identity test relies on, and the property the
//! proptest suite in `tests/proto.rs` pins down.
//!
//! # Multi-resource form
//!
//! `OBSERVE` carries one resource by default (CPU). When both the usage
//! and the limit token are comma pairs `cpu,mem`, the sample carries a
//! memory lane too; a pair in only *one* of the two tokens is a parse
//! error (`ERR parse`, both-or-neither rule), so a truncated pair cannot
//! be silently read as a scalar. The arity is unchanged — a pair is still
//! one token — which keeps old parsers' error behavior (they answer
//! `ERR parse` rather than misreading). `PREDICT` with a trailing `*`
//! requests a per-resource prediction, answered as `PRED <cpu>,<mem>`;
//! without it the scalar `PRED <cpu>` form is served, so existing
//! clients never see a pair they did not ask for.
//!
//! # Batched framing
//!
//! `BATCH <n>` frames `n` data-plane sub-requests (`OBSERVE`, `PREDICT`,
//! `ADMIT`) into one round trip: the header line is followed by exactly
//! `n` ordinary request lines, and the server answers with a `BATCHR <n>`
//! header followed by exactly `n` ordinary response lines, in
//! sub-request order. See `docs/PROTOCOL.md` §2.1. Framing helpers live
//! here ([`encode_batch_into`], [`parse_batch_header`],
//! [`parse_batchr_header`]); the connection loop owns the line-by-line
//! streaming.
//!
//! # Allocation discipline
//!
//! The `parse`/`encode` methods are convenience wrappers that allocate.
//! The data plane uses [`Request::parse_in`] (tokenizes into a reusable
//! [`ProtoScratch`], interns cell names) and
//! [`Request::encode_into`]/[`Response::encode_into`] (append to a reused
//! `Vec<u8>` with manual integer/float formatters) — zero heap
//! allocations per request once the connection's scratch is warm.

use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
use std::fmt;

/// Hard cap on the length of one protocol line, in bytes. Connections
/// exceeding it are answered with a parse error and closed.
pub const MAX_LINE_BYTES: usize = 512;

/// Hard cap on the sub-request count of one `BATCH` frame.
pub const MAX_BATCH: usize = 1024;

/// Cap on distinct cell names interned per connection scratch; a peer
/// cycling through more than this many names falls back to re-allocating
/// (the cache is cleared), never to unbounded growth.
const CELL_CACHE_CAP: usize = 32;

/// Reusable per-connection parse state: token spans and an interned cell
/// table. Feeding every request of a connection through one scratch makes
/// parsing allocation-free in the steady state — token boundaries go into
/// a recycled span vector and repeated cell names are served as reference
/// clones of previously seen [`CellId`]s.
#[derive(Debug, Default)]
pub struct ProtoScratch {
    /// Byte ranges of the line's whitespace-separated tokens.
    spans: Vec<(u32, u32)>,
    /// Cell names already seen on this connection.
    cells: Vec<CellId>,
}

impl ProtoScratch {
    /// Creates an empty scratch.
    pub fn new() -> ProtoScratch {
        ProtoScratch::default()
    }

    /// Records the token spans of `line` (ASCII-whitespace separated).
    fn tokenize(&mut self, line: &str) {
        self.spans.clear();
        let bytes = line.as_bytes();
        let mut start: Option<usize> = None;
        for (i, &b) in bytes.iter().enumerate() {
            if b.is_ascii_whitespace() {
                if let Some(s) = start.take() {
                    self.spans.push((s as u32, i as u32));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            self.spans.push((s as u32, bytes.len() as u32));
        }
    }

    /// Returns the cached [`CellId`] for `name`, creating (and caching) it
    /// on first sight. Bounded by [`CELL_CACHE_CAP`].
    fn intern_cell(&mut self, name: &str) -> CellId {
        if let Some(c) = self.cells.iter().find(|c| c.name() == name) {
            return c.clone();
        }
        if self.cells.len() >= CELL_CACHE_CAP {
            self.cells.clear();
        }
        let cell = CellId::new(name);
        self.cells.push(cell.clone());
        cell
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One per-task usage sample (`OBSERVE`).
    Observe {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
        /// The sampled task.
        task: TaskId,
        /// Observed usage for the tick, in capacity units.
        usage: f64,
        /// The task's current limit, in capacity units.
        limit: f64,
        /// Memory lane as `(usage, limit)`, in machine-memory units, when
        /// the sample was sent in the `cpu,mem` pair form. `None` for
        /// scalar samples (backward-compatible default).
        mem: Option<(f64, f64)>,
        /// The 5-minute tick the sample belongs to.
        tick: u64,
    },
    /// Predict a machine's peak (`PREDICT`).
    Predict {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
        /// Whether the client asked for a per-resource prediction
        /// (trailing `*` operand): answered as `PRED <cpu>,<mem>`.
        vector: bool,
    },
    /// Would a task of the given limit fit (`ADMIT`)?
    Admit {
        /// Owning cell.
        cell: CellId,
        /// Machine within the cell.
        machine: MachineId,
        /// Limit of the candidate task, in capacity units.
        limit: f64,
    },
    /// Service-wide counter snapshot (`STATS`).
    Stats,
    /// Full metrics exposition (`METRICS`): every registered counter,
    /// gauge, and histogram in the `v=1` text format.
    Metrics,
    /// Current cluster ring description (`RING`): generation, geometry,
    /// and — once the supervisor has pushed them — the member addresses.
    /// Clients use it to auto-adopt a new ring spec after a membership
    /// change (PROTOCOL.md §7.4).
    Ring,
    /// Install a new ring description (`RINGSET`), pushed by the
    /// supervisor after a membership change: the member rebuilds its
    /// ownership map through its configured factory, re-stamps its epoch
    /// with the new generation, and starts answering `RING` with the new
    /// description. Generations below the installed one are rejected with
    /// `ERR stale`.
    RingSet {
        /// Ring member count.
        nodes: u64,
        /// Virtual nodes per member.
        vnodes: u64,
        /// Ring hash seed.
        seed: u64,
        /// Ring generation (full 64-bit word; only the low 16 bits fit in
        /// the packed `epoch` — see [`pack_epoch`]).
        generation: u64,
        /// Member data-plane addresses in ring-index order (may be empty
        /// when unknown, encoded as `-`).
        addrs: Vec<String>,
    },
    /// Dump the member's handoff sample log (`HANDOFF`): the server
    /// answers a `HANDOFF <n>` header followed by `n` ordinary `OBSERVE`
    /// lines in original arrival order — replaying them into a fresh
    /// member reproduces this member's machine state bit-identically.
    /// `ERR internal` if the log is disabled.
    Handoff,
    /// Ask the server to drain and exit (`SHUTDOWN`).
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Observe accepted for ingestion.
    Ok,
    /// Shard queue full; the request was dropped and may be retried.
    Busy,
    /// Predicted machine peak, in capacity units.
    Pred {
        /// The (clamped) peak prediction (CPU lane).
        peak: f64,
        /// Memory-lane peak, present only for vector `PREDICT` requests
        /// (encoded as the `cpu,mem` pair form).
        mem: Option<f64>,
    },
    /// Admission verdict.
    Admitted {
        /// Whether the candidate task fits.
        admit: bool,
        /// Projected peak if admitted (prediction + candidate limit).
        projected: f64,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Metrics exposition: the `v=1 <name>=<value> ...` payload (without
    /// the `METRICS` verb), as produced by
    /// [`oc_telemetry::metrics::encode_exposition`]. Parsing validates the
    /// payload; use [`oc_telemetry::metrics::parse_exposition`] to read
    /// individual values.
    Metrics {
        /// The exposition payload, starting with its `v=1` version token.
        exposition: String,
    },
    /// Current ring description, answering [`Request::Ring`].
    Ring {
        /// Ring member count.
        nodes: u64,
        /// Virtual nodes per member.
        vnodes: u64,
        /// Ring hash seed.
        seed: u64,
        /// Full 64-bit ring generation (authoritative — the packed
        /// `epoch` only carries it mod 2^16, see [`pack_epoch`]).
        generation: u64,
        /// The member's current epoch word.
        epoch: u64,
        /// Member data-plane addresses in ring-index order; empty
        /// (encoded `-`) until the supervisor pushes them via `RINGSET`.
        addrs: Vec<String>,
    },
    /// Typed error.
    Err {
        /// Machine-readable error class.
        code: ErrCode,
        /// Human-readable detail (single line).
        detail: String,
    },
}

/// Machine-readable error classes carried by [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line failed to parse.
    Parse,
    /// The sample's tick was already flushed (out-of-order beyond a tick).
    Stale,
    /// The sample's tick would synthesize too many empty ticks.
    Gap,
    /// `PREDICT` for a machine the service has never observed.
    UnknownMachine,
    /// The server is shutting down.
    Shutdown,
    /// The connection sat idle past the server's deadline and was closed
    /// (retryable: reconnect and resend).
    Timeout,
    /// The server's connection cap was reached (retryable: reconnect
    /// after a backoff).
    ConnLimit,
    /// The machine key is not owned by this process under its cluster
    /// ring (retryable: re-resolve the owner and resend — see
    /// PROTOCOL.md §7).
    NotMine,
    /// Internal error (shard died, bad state).
    Internal,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::Stale => "stale",
            ErrCode::Gap => "gap",
            ErrCode::UnknownMachine => "unknown-machine",
            ErrCode::Shutdown => "shutdown",
            ErrCode::Timeout => "timeout",
            ErrCode::ConnLimit => "conn-limit",
            ErrCode::NotMine => "not-mine",
            ErrCode::Internal => "internal",
        }
    }

    /// Parses the wire token.
    pub fn parse(token: &str) -> Option<ErrCode> {
        Some(match token {
            "parse" => ErrCode::Parse,
            "stale" => ErrCode::Stale,
            "gap" => ErrCode::Gap,
            "unknown-machine" => ErrCode::UnknownMachine,
            "shutdown" => ErrCode::Shutdown,
            "timeout" => ErrCode::Timeout,
            "conn-limit" => ErrCode::ConnLimit,
            "not-mine" => ErrCode::NotMine,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

/// Service-wide counters, encoded as the `STATS` response line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Samples ingested (excludes stale/invalid rejects).
    pub observes: u64,
    /// Predictions served.
    pub predicts: u64,
    /// Admission checks served.
    pub admits: u64,
    /// Requests rejected with `BUSY` (bounded-queue backpressure).
    pub busy: u64,
    /// Samples rejected as stale.
    pub stale: u64,
    /// Other typed errors.
    pub errors: u64,
    /// Machines with live state.
    pub machines: u64,
    /// Faults injected by the server's own fault-injection plan (0 unless
    /// chaos testing is configured).
    pub faults: u64,
    /// Connections closed for exceeding the idle deadline.
    pub timeouts: u64,
    /// Connections rejected at the max-connections cap.
    pub conn_rejects: u64,
    /// Server identity stamp: process start time packed with the cluster
    /// ring generation (see [`pack_epoch`]). Compared for *inequality*
    /// only — a change means the process restarted (fresh state) or its
    /// ring assignment changed. `0` for a pre-epoch peer.
    pub epoch: u64,
    /// Median shard service latency (enqueue → handled), microseconds.
    pub p50_us: f64,
    /// 99th-percentile shard service latency, microseconds.
    pub p99_us: f64,
    /// Mean shard service latency, microseconds.
    pub mean_us: f64,
    /// Maximum shard service latency, microseconds.
    pub max_us: f64,
}

/// Typed wire-protocol errors. Malformed input never panics; it produces
/// one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was empty or whitespace-only.
    Empty,
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong {
        /// Observed length in bytes.
        len: usize,
    },
    /// The first token was not a known verb.
    UnknownVerb {
        /// The offending token.
        verb: String,
    },
    /// Wrong number of operands for the verb.
    Arity {
        /// The verb.
        verb: &'static str,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Field name.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// A numeric field parsed but was non-finite or negative.
    OutOfDomain {
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A task id was not of the form `<job>:<index>`.
    BadTaskId {
        /// The offending token.
        token: String,
    },
    /// An `OBSERVE` mixed the scalar and the `cpu,mem` pair form: its
    /// usage and limit tokens must both be scalars or both be pairs.
    LaneMismatch,
    /// A `STATS` field was missing, misnamed, or out of order.
    StatsField {
        /// The key expected at this position.
        expected: &'static str,
        /// The token found instead.
        got: String,
    },
    /// A `BATCH`/`BATCHR` frame header counted an out-of-range number of
    /// sub-messages (must be `1..=MAX_BATCH`).
    BatchSize {
        /// The offending count.
        got: u64,
    },
    /// A response line did not match any response form.
    BadResponse {
        /// The offending line (truncated).
        line: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty line"),
            ProtoError::LineTooLong { len } => {
                write!(f, "line of {len} bytes exceeds {MAX_LINE_BYTES}")
            }
            ProtoError::UnknownVerb { verb } => write!(f, "unknown verb '{verb}'"),
            ProtoError::Arity {
                verb,
                expected,
                got,
            } => write!(f, "{verb} takes {expected} operands, got {got}"),
            ProtoError::BadNumber { field, token } => {
                write!(f, "field {field}: '{token}' is not a number")
            }
            ProtoError::OutOfDomain { field, value } => {
                write!(f, "field {field}: {value} must be finite and >= 0")
            }
            ProtoError::BadTaskId { token } => {
                write!(f, "task id '{token}' is not <job>:<index>")
            }
            ProtoError::LaneMismatch => {
                write!(
                    f,
                    "usage and limit must both be scalar or both cpu,mem pairs"
                )
            }
            ProtoError::StatsField { expected, got } => {
                write!(f, "STATS field: expected '{expected}', got '{got}'")
            }
            ProtoError::BatchSize { got } => {
                write!(f, "batch of {got} sub-requests outside 1..={MAX_BATCH}")
            }
            ProtoError::BadResponse { line } => write!(f, "unparseable response '{line}'"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// `fmt::Write` adapter appending to a byte buffer (never fails).
struct ByteFmt<'a>(&'a mut Vec<u8>);

impl fmt::Write for ByteFmt<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Appends `format_args!` output to `out` without an intermediate String.
macro_rules! push_fmt {
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!(ByteFmt($out), $($arg)*);
    }};
}

/// Appends the decimal digits of `v` (same bytes as `format!("{v}")`)
/// without going through the `fmt` machinery.
pub fn push_u64(out: &mut Vec<u8>, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Largest f64 magnitude whose integral values are all exactly
/// representable (2^53): below it, an integral float prints as plain
/// digits and the manual integer formatter is bit-faithful.
const EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0;

/// Appends `v` exactly as `format!("{v}")` would render it (shortest
/// round trip). Integral values — the common case for ticks, counters,
/// and whole-unit limits — take a manual digit path; everything else
/// falls back to the standard formatter, writing straight into `out`.
pub fn push_f64(out: &mut Vec<u8>, v: f64) {
    if v.is_finite() && v.trunc() == v && v.abs() <= EXACT_INT_BOUND {
        // `Display` prints integral f64s as bare digits ("-0" kept for
        // the negative-zero bit pattern).
        if v.is_sign_negative() {
            out.push(b'-');
        }
        push_u64(out, v.abs() as u64);
    } else {
        push_fmt!(out, "{v}");
    }
}

/// Encodes a `BATCH` frame: the header line plus one line per
/// sub-request, each `\n`-terminated. The caller is responsible for
/// `reqs.len()` being in `1..=MAX_BATCH` and every sub-request being a
/// data-plane verb (the server answers `ERR parse` per offending
/// sub-request otherwise).
pub fn encode_batch_into(reqs: &[Request], out: &mut Vec<u8>) {
    out.extend_from_slice(b"BATCH ");
    push_u64(out, reqs.len() as u64);
    out.push(b'\n');
    for req in reqs {
        req.encode_into(out);
        out.push(b'\n');
    }
}

/// Appends a `BATCHR <n>` multi-response header line (no newline).
pub fn encode_batchr_header_into(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(b"BATCHR ");
    push_u64(out, n as u64);
}

fn parse_frame_header(
    verb: &'static str,
    line: &str,
    scratch: &mut ProtoScratch,
) -> Result<Option<usize>, ProtoError> {
    scratch.tokenize(line);
    let tok = |i: usize| {
        let (s, e) = scratch.spans[i];
        &line[s as usize..e as usize]
    };
    if scratch.spans.is_empty() || tok(0) != verb {
        return Ok(None);
    }
    if scratch.spans.len() != 2 {
        return Err(ProtoError::Arity {
            verb,
            expected: 1,
            got: scratch.spans.len() - 1,
        });
    }
    let n = parse_u64("batch", tok(1))?;
    if n == 0 || n > MAX_BATCH as u64 {
        return Err(ProtoError::BatchSize { got: n });
    }
    Ok(Some(n as usize))
}

/// Recognizes a `BATCH <n>` frame header. `Ok(None)` means the line is
/// not a batch header at all (parse it as an ordinary request);
/// `Ok(Some(n))` announces `n` sub-request lines to follow.
///
/// # Errors
///
/// A line that *is* a `BATCH` header but malformed — wrong arity, bad
/// count, count outside `1..=MAX_BATCH` — is a typed [`ProtoError`]. The
/// connection cannot be resynchronized after one (the number of
/// follow-up lines is unknown), so servers close on it.
pub fn parse_batch_header(
    line: &str,
    scratch: &mut ProtoScratch,
) -> Result<Option<usize>, ProtoError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtoError::LineTooLong { len: line.len() });
    }
    parse_frame_header("BATCH", line, scratch)
}

/// Recognizes a `BATCHR <n>` multi-response header; same contract as
/// [`parse_batch_header`].
///
/// # Errors
///
/// Typed [`ProtoError`] for a malformed `BATCHR` header.
pub fn parse_batchr_header(
    line: &str,
    scratch: &mut ProtoScratch,
) -> Result<Option<usize>, ProtoError> {
    parse_frame_header("BATCHR", line, scratch)
}

fn parse_f64(field: &'static str, token: &str) -> Result<f64, ProtoError> {
    let v: f64 = token.parse().map_err(|_| ProtoError::BadNumber {
        field,
        token: token.to_string(),
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(ProtoError::OutOfDomain { field, value: v });
    }
    Ok(v)
}

/// Parses a float token that may be a `cpu,mem` pair. Returns the CPU
/// value and the optional memory value; each component goes through the
/// same finiteness/sign domain checks as a scalar float.
fn parse_f64_or_pair(field: &'static str, token: &str) -> Result<(f64, Option<f64>), ProtoError> {
    match token.split_once(',') {
        None => Ok((parse_f64(field, token)?, None)),
        Some((cpu, mem)) => Ok((parse_f64(field, cpu)?, Some(parse_f64(field, mem)?))),
    }
}

fn parse_u64(field: &'static str, token: &str) -> Result<u64, ProtoError> {
    token.parse().map_err(|_| ProtoError::BadNumber {
        field,
        token: token.to_string(),
    })
}

fn parse_machine(token: &str) -> Result<MachineId, ProtoError> {
    token
        .parse()
        .map(MachineId)
        .map_err(|_| ProtoError::BadNumber {
            field: "machine",
            token: token.to_string(),
        })
}

fn parse_task(token: &str) -> Result<TaskId, ProtoError> {
    let bad = || ProtoError::BadTaskId {
        token: token.to_string(),
    };
    let (job, index) = token.split_once(':').ok_or_else(bad)?;
    let job: u64 = job.parse().map_err(|_| bad())?;
    let index: u32 = index.parse().map_err(|_| bad())?;
    Ok(TaskId::new(JobId(job), index))
}

/// Decodes a `RING`/`RINGSET` address-list token: comma-separated
/// addresses, or the placeholder `-` for "none known yet". Addresses are
/// carried as opaque strings — resolution happens at the adopting
/// client, which already validates socket addresses.
fn parse_addr_list(token: &str) -> Vec<String> {
    if token == "-" {
        return Vec::new();
    }
    token.split(',').map(str::to_string).collect()
}

/// Encodes an address list as one token (`-` when empty). Addresses must
/// not contain whitespace or commas; socket addresses never do.
fn push_addr_list(out: &mut Vec<u8>, addrs: &[String]) {
    if addrs.is_empty() {
        out.push(b'-');
        return;
    }
    for (i, a) in addrs.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        out.extend_from_slice(a.as_bytes());
    }
}

fn expect_arity(verb: &'static str, operands: &[&str], expected: usize) -> Result<(), ProtoError> {
    if operands.len() != expected {
        return Err(ProtoError::Arity {
            verb,
            expected,
            got: operands.len(),
        });
    }
    Ok(())
}

impl Request {
    /// Parses one request line (without the trailing newline),
    /// allocating fresh parse state. Convenience wrapper over
    /// [`Request::parse_in`] for tests and one-shot callers.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; malformed input never panics.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        Request::parse_in(line, &mut ProtoScratch::new())
    }

    /// Parses one request line using a reusable [`ProtoScratch`]. In the
    /// steady state this performs no heap allocation: token spans go into
    /// the scratch's recycled vector and repeated cell names come back as
    /// reference clones from its intern table. Error paths may allocate
    /// (they copy the offending token into the error).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; malformed input never panics.
    pub fn parse_in(line: &str, scratch: &mut ProtoScratch) -> Result<Request, ProtoError> {
        if line.len() > MAX_LINE_BYTES {
            return Err(ProtoError::LineTooLong { len: line.len() });
        }
        scratch.tokenize(line);
        if scratch.spans.is_empty() {
            return Err(ProtoError::Empty);
        }
        let tok = |i: usize| {
            let (s, e) = scratch.spans[i];
            &line[s as usize..e as usize]
        };
        let n_operands = scratch.spans.len() - 1;
        let arity = |verb: &'static str, expected: usize| {
            if n_operands != expected {
                return Err(ProtoError::Arity {
                    verb,
                    expected,
                    got: n_operands,
                });
            }
            Ok(())
        };
        match tok(0) {
            "OBSERVE" => {
                arity("OBSERVE", 6)?;
                let machine = parse_machine(tok(2))?;
                let task = parse_task(tok(3))?;
                let (usage, mem_usage) = parse_f64_or_pair("usage", tok(4))?;
                let (limit, mem_limit) = parse_f64_or_pair("limit", tok(5))?;
                let tick = parse_u64("tick", tok(6))?;
                let mem = match (mem_usage, mem_limit) {
                    (Some(u), Some(l)) => Some((u, l)),
                    (None, None) => None,
                    _ => return Err(ProtoError::LaneMismatch),
                };
                Ok(Request::Observe {
                    cell: scratch.intern_cell(
                        &line[scratch.spans[1].0 as usize..scratch.spans[1].1 as usize],
                    ),
                    machine,
                    task,
                    usage,
                    limit,
                    mem,
                    tick,
                })
            }
            "PREDICT" => {
                let vector = n_operands == 3 && tok(3) == "*";
                if !vector {
                    arity("PREDICT", 2)?;
                }
                let machine = parse_machine(tok(2))?;
                Ok(Request::Predict {
                    cell: scratch.intern_cell(
                        &line[scratch.spans[1].0 as usize..scratch.spans[1].1 as usize],
                    ),
                    machine,
                    vector,
                })
            }
            "ADMIT" => {
                arity("ADMIT", 3)?;
                let machine = parse_machine(tok(2))?;
                let limit = parse_f64("limit", tok(3))?;
                Ok(Request::Admit {
                    cell: scratch.intern_cell(
                        &line[scratch.spans[1].0 as usize..scratch.spans[1].1 as usize],
                    ),
                    machine,
                    limit,
                })
            }
            "STATS" => {
                arity("STATS", 0)?;
                Ok(Request::Stats)
            }
            "METRICS" => {
                arity("METRICS", 0)?;
                Ok(Request::Metrics)
            }
            "RING" => {
                arity("RING", 0)?;
                Ok(Request::Ring)
            }
            "RINGSET" => {
                arity("RINGSET", 5)?;
                Ok(Request::RingSet {
                    nodes: parse_u64("nodes", tok(1))?,
                    vnodes: parse_u64("vnodes", tok(2))?,
                    seed: parse_u64("seed", tok(3))?,
                    generation: parse_u64("generation", tok(4))?,
                    addrs: parse_addr_list(tok(5)),
                })
            }
            "HANDOFF" => {
                arity("HANDOFF", 0)?;
                Ok(Request::Handoff)
            }
            "SHUTDOWN" => {
                arity("SHUTDOWN", 0)?;
                Ok(Request::Shutdown)
            }
            other => Err(ProtoError::UnknownVerb {
                verb: other.to_string(),
            }),
        }
    }

    /// Appends the request's wire line (no trailing newline) to `out`
    /// without intermediate allocation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Observe {
                cell,
                machine,
                task,
                usage,
                limit,
                mem,
                tick,
            } => {
                out.extend_from_slice(b"OBSERVE ");
                out.extend_from_slice(cell.name().as_bytes());
                out.push(b' ');
                push_u64(out, u64::from(machine.0));
                out.push(b' ');
                push_u64(out, task.job.0);
                out.push(b':');
                push_u64(out, u64::from(task.index));
                out.push(b' ');
                push_f64(out, *usage);
                if let Some((mu, _)) = mem {
                    out.push(b',');
                    push_f64(out, *mu);
                }
                out.push(b' ');
                push_f64(out, *limit);
                if let Some((_, ml)) = mem {
                    out.push(b',');
                    push_f64(out, *ml);
                }
                out.push(b' ');
                push_u64(out, *tick);
            }
            Request::Predict {
                cell,
                machine,
                vector,
            } => {
                out.extend_from_slice(b"PREDICT ");
                out.extend_from_slice(cell.name().as_bytes());
                out.push(b' ');
                push_u64(out, u64::from(machine.0));
                if *vector {
                    out.extend_from_slice(b" *");
                }
            }
            Request::Admit {
                cell,
                machine,
                limit,
            } => {
                out.extend_from_slice(b"ADMIT ");
                out.extend_from_slice(cell.name().as_bytes());
                out.push(b' ');
                push_u64(out, u64::from(machine.0));
                out.push(b' ');
                push_f64(out, *limit);
            }
            Request::Stats => out.extend_from_slice(b"STATS"),
            Request::Metrics => out.extend_from_slice(b"METRICS"),
            Request::Ring => out.extend_from_slice(b"RING"),
            Request::RingSet {
                nodes,
                vnodes,
                seed,
                generation,
                addrs,
            } => {
                out.extend_from_slice(b"RINGSET ");
                push_u64(out, *nodes);
                out.push(b' ');
                push_u64(out, *vnodes);
                out.push(b' ');
                push_u64(out, *seed);
                out.push(b' ');
                push_u64(out, *generation);
                out.push(b' ');
                push_addr_list(out, addrs);
            }
            Request::Handoff => out.extend_from_slice(b"HANDOFF"),
            Request::Shutdown => out.extend_from_slice(b"SHUTDOWN"),
        }
    }

    /// Encodes the request as one line (no trailing newline). Allocating
    /// wrapper over [`Request::encode_into`].
    pub fn encode(&self) -> String {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        String::from_utf8(out).expect("encoded line is ASCII")
    }
}

/// Key/value pairs of the `STATS` line, in encode order.
const STATS_KEYS: [&str; 15] = [
    "observes",
    "predicts",
    "admits",
    "busy",
    "stale",
    "errors",
    "machines",
    "faults",
    "timeouts",
    "conn_rejects",
    "epoch",
    "p50_us",
    "p99_us",
    "mean_us",
    "max_us",
];

/// Packs a process start stamp (unix seconds) and a cluster ring
/// generation into one `epoch` word: start in the high 48 bits, ring
/// generation (mod 2^16) in the low 16. Clients compare epochs for
/// inequality; [`epoch_ring_generation`] recovers the generation for
/// "did the ring change without a restart" checks.
///
/// # Generation wrap
///
/// Only the low 16 bits of the generation survive packing, so
/// generations `g` and `g + 65536` pack to the *same* word when
/// `start_unix_secs` matches (a member re-stamped within the same
/// second). The epoch word is therefore a cheap **change hint**, never
/// an ordering or identity oracle: clients must compare the full 64-bit
/// word (never just [`epoch_ring_generation`]), and any decision that
/// depends on which ring is newer must use the full generation carried
/// by the `RING` response (see PROTOCOL.md §7.4).
pub fn pack_epoch(start_unix_secs: u64, ring_generation: u64) -> u64 {
    (start_unix_secs << 16) | (ring_generation & 0xFFFF)
}

/// The ring generation (mod 2^16) packed into an `epoch` word.
pub fn epoch_ring_generation(epoch: u64) -> u64 {
    epoch & 0xFFFF
}

/// The process start stamp (unix seconds, truncated to 48 bits) packed
/// into an `epoch` word.
pub fn epoch_start_secs(epoch: u64) -> u64 {
    epoch >> 16
}

impl StatsSnapshot {
    /// The `k=v` payload of a `STATS` response line, without the verb.
    pub fn encode_fields(&self) -> String {
        let mut out = Vec::new();
        self.encode_fields_into(&mut out);
        String::from_utf8(out).expect("encoded fields are ASCII")
    }

    /// Appends the `k=v` payload (without the verb) to `out`.
    pub fn encode_fields_into(&self, out: &mut Vec<u8>) {
        let u = [
            self.observes,
            self.predicts,
            self.admits,
            self.busy,
            self.stale,
            self.errors,
            self.machines,
            self.faults,
            self.timeouts,
            self.conn_rejects,
            self.epoch,
        ];
        let f = [self.p50_us, self.p99_us, self.mean_us, self.max_us];
        for (i, key) in STATS_KEYS.iter().enumerate() {
            if i > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(key.as_bytes());
            out.push(b'=');
            if i < u.len() {
                push_u64(out, u[i]);
            } else {
                push_f64(out, f[i - u.len()]);
            }
        }
    }

    /// Parses the `k=v` operands of a `STATS` line, in `STATS_KEYS`
    /// order.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Arity`] for a wrong field count,
    /// [`ProtoError::StatsField`] for a missing `=` or a key out of
    /// order, [`ProtoError::BadNumber`]/[`ProtoError::OutOfDomain`] for
    /// an unparseable value — naming the offending field, like the rest
    /// of the codec.
    pub fn parse_fields(operands: &[&str]) -> Result<StatsSnapshot, ProtoError> {
        expect_arity("STATS", operands, STATS_KEYS.len())?;
        let mut s = StatsSnapshot::default();
        for (key, token) in STATS_KEYS.iter().zip(operands) {
            let key_s: &'static str = key;
            let Some((k, v)) = token.split_once('=') else {
                return Err(ProtoError::StatsField {
                    expected: key_s,
                    got: token.to_string(),
                });
            };
            if k != key_s {
                return Err(ProtoError::StatsField {
                    expected: key_s,
                    got: token.to_string(),
                });
            }
            match key_s {
                "observes" => s.observes = parse_u64(key_s, v)?,
                "predicts" => s.predicts = parse_u64(key_s, v)?,
                "admits" => s.admits = parse_u64(key_s, v)?,
                "busy" => s.busy = parse_u64(key_s, v)?,
                "stale" => s.stale = parse_u64(key_s, v)?,
                "errors" => s.errors = parse_u64(key_s, v)?,
                "machines" => s.machines = parse_u64(key_s, v)?,
                "faults" => s.faults = parse_u64(key_s, v)?,
                "timeouts" => s.timeouts = parse_u64(key_s, v)?,
                "conn_rejects" => s.conn_rejects = parse_u64(key_s, v)?,
                "epoch" => s.epoch = parse_u64(key_s, v)?,
                "p50_us" => s.p50_us = parse_f64(key_s, v)?,
                "p99_us" => s.p99_us = parse_f64(key_s, v)?,
                "mean_us" => s.mean_us = parse_f64(key_s, v)?,
                "max_us" => s.max_us = parse_f64(key_s, v)?,
                _ => unreachable!("key list is fixed"),
            }
        }
        Ok(s)
    }

    /// Total data-plane operations behind this snapshot's latency
    /// figures — the weight used by [`StatsSnapshot::merge`].
    fn latency_weight(&self) -> u64 {
        self.observes + self.predicts + self.admits
    }

    /// Folds another process's snapshot into this one, producing a
    /// fleet-level view: counters are summed exactly; `p50_us`/`p99_us`/
    /// `mean_us` become operation-count-weighted averages (an
    /// approximation — quantiles do not compose; the exact path is the
    /// `METRICS` exposition, whose histograms bin-merge losslessly);
    /// `max_us` is the max of maxes (exact); `epoch` keeps the maximum,
    /// so any member restart or re-ring still changes the merged epoch.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        let (wa, wb) = (self.latency_weight(), other.latency_weight());
        let wt = wa + wb;
        if wt > 0 {
            let blend = |a: f64, b: f64| (a * wa as f64 + b * wb as f64) / wt as f64;
            self.p50_us = blend(self.p50_us, other.p50_us);
            self.p99_us = blend(self.p99_us, other.p99_us);
            self.mean_us = blend(self.mean_us, other.mean_us);
        }
        self.max_us = self.max_us.max(other.max_us);
        self.observes += other.observes;
        self.predicts += other.predicts;
        self.admits += other.admits;
        self.busy += other.busy;
        self.stale += other.stale;
        self.errors += other.errors;
        self.machines += other.machines;
        self.faults += other.faults;
        self.timeouts += other.timeouts;
        self.conn_rejects += other.conn_rejects;
        self.epoch = self.epoch.max(other.epoch);
    }
}

impl Response {
    /// Parses one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; malformed input never panics.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or(ProtoError::Empty)?;
        let operands: Vec<&str> = tokens.collect();
        let bad = || ProtoError::BadResponse {
            line: line.chars().take(80).collect(),
        };
        match verb {
            "OK" if operands.is_empty() => Ok(Response::Ok),
            "BUSY" if operands.is_empty() => Ok(Response::Busy),
            "PRED" => {
                expect_arity("PRED", &operands, 1)?;
                let (peak, mem) = parse_f64_or_pair("peak", operands[0])?;
                Ok(Response::Pred { peak, mem })
            }
            "ADMITTED" => {
                expect_arity("ADMITTED", &operands, 2)?;
                let admit = match operands[0] {
                    "yes" => true,
                    "no" => false,
                    _ => return Err(bad()),
                };
                Ok(Response::Admitted {
                    admit,
                    projected: parse_f64("projected", operands[1])?,
                })
            }
            "STATS" => StatsSnapshot::parse_fields(&operands).map(Response::Stats),
            "RING" => {
                expect_arity("RING", &operands, 6)?;
                Ok(Response::Ring {
                    nodes: parse_u64("nodes", operands[0])?,
                    vnodes: parse_u64("vnodes", operands[1])?,
                    seed: parse_u64("seed", operands[2])?,
                    generation: parse_u64("generation", operands[3])?,
                    epoch: parse_u64("epoch", operands[4])?,
                    addrs: parse_addr_list(operands[5]),
                })
            }
            "METRICS" => {
                let exposition = operands.join(" ");
                if oc_telemetry::metrics::parse_exposition(&exposition).is_none() {
                    return Err(bad());
                }
                Ok(Response::Metrics { exposition })
            }
            "ERR" => {
                if operands.is_empty() {
                    return Err(bad());
                }
                let code = ErrCode::parse(operands[0]).ok_or_else(bad)?;
                Ok(Response::Err {
                    code,
                    detail: operands[1..].join(" "),
                })
            }
            _ => Err(bad()),
        }
    }

    /// Appends the response's wire line (no trailing newline) to `out`.
    /// Error details are flattened to a single line. The hot-path
    /// variants (`OK`, `BUSY`, `PRED`, `ADMITTED`) never allocate; the
    /// snapshot variants go through the formatter.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.extend_from_slice(b"OK"),
            Response::Busy => out.extend_from_slice(b"BUSY"),
            Response::Pred { peak, mem } => {
                out.extend_from_slice(b"PRED ");
                push_f64(out, *peak);
                if let Some(m) = mem {
                    out.push(b',');
                    push_f64(out, *m);
                }
            }
            Response::Admitted { admit, projected } => {
                out.extend_from_slice(if *admit {
                    b"ADMITTED yes ".as_slice()
                } else {
                    b"ADMITTED no ".as_slice()
                });
                push_f64(out, *projected);
            }
            Response::Stats(s) => {
                out.extend_from_slice(b"STATS ");
                s.encode_fields_into(out);
            }
            Response::Metrics { exposition } => {
                out.extend_from_slice(b"METRICS ");
                out.extend_from_slice(exposition.as_bytes());
            }
            Response::Ring {
                nodes,
                vnodes,
                seed,
                generation,
                epoch,
                addrs,
            } => {
                out.extend_from_slice(b"RING ");
                push_u64(out, *nodes);
                out.push(b' ');
                push_u64(out, *vnodes);
                out.push(b' ');
                push_u64(out, *seed);
                out.push(b' ');
                push_u64(out, *generation);
                out.push(b' ');
                push_u64(out, *epoch);
                out.push(b' ');
                push_addr_list(out, addrs);
            }
            Response::Err { code, detail } => {
                out.extend_from_slice(b"ERR ");
                out.extend_from_slice(code.as_str().as_bytes());
                if !detail.is_empty() {
                    out.push(b' ');
                    for c in detail.chars() {
                        let c = if c == '\n' || c == '\r' { ' ' } else { c };
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                }
            }
        }
    }

    /// Encodes the response as one line (no trailing newline).
    /// Allocating wrapper over [`Response::encode_into`].
    pub fn encode(&self) -> String {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        String::from_utf8(out).expect("encoded line is valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_round_trip() {
        let req = Request::Observe {
            cell: CellId::new("a"),
            machine: MachineId(3),
            task: TaskId::new(JobId(17), 2),
            usage: 0.125,
            limit: 0.5,
            mem: None,
            tick: 42,
        };
        let line = req.encode();
        assert_eq!(line, "OBSERVE a 3 17:2 0.125 0.5 42");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn vector_observe_round_trip() {
        let req = Request::Observe {
            cell: CellId::new("a"),
            machine: MachineId(3),
            task: TaskId::new(JobId(17), 2),
            usage: 0.125,
            limit: 0.5,
            mem: Some((0.03125, 0.25)),
            tick: 42,
        };
        let line = req.encode();
        assert_eq!(line, "OBSERVE a 3 17:2 0.125,0.03125 0.5,0.25 42");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn mixed_lane_forms_are_rejected() {
        // Pair usage with scalar limit (and vice versa): both-or-neither.
        assert_eq!(
            Request::parse("OBSERVE a 1 2:0 0.5,0.1 0.5 7"),
            Err(ProtoError::LaneMismatch)
        );
        assert_eq!(
            Request::parse("OBSERVE a 1 2:0 0.5 0.5,0.2 7"),
            Err(ProtoError::LaneMismatch)
        );
        // Each pair component gets the scalar domain checks.
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 0.5,NaN 0.5,0.2 7"),
            Err(ProtoError::OutOfDomain { field: "usage", .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 0.5,0.1 0.5,-1 7"),
            Err(ProtoError::OutOfDomain { field: "limit", .. })
        ));
        // A malformed pair (trailing comma) is a bad number, not a scalar.
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 0.5, 0.5,0.2 7"),
            Err(ProtoError::BadNumber { field: "usage", .. })
        ));
    }

    #[test]
    fn vector_predict_round_trip() {
        let req = Request::Predict {
            cell: CellId::new("cell-a"),
            machine: MachineId(7),
            vector: true,
        };
        let line = req.encode();
        assert_eq!(line, "PREDICT cell-a 7 *");
        assert_eq!(Request::parse(&line).unwrap(), req);
        // Any trailing operand other than `*` keeps the arity error.
        assert!(matches!(
            Request::parse("PREDICT cell-a 7 x"),
            Err(ProtoError::Arity {
                verb: "PREDICT",
                ..
            })
        ));
    }

    #[test]
    fn vector_pred_round_trip() {
        let r = Response::Pred {
            peak: 0.1 + 0.2,
            mem: Some(0.3 + 0.1),
        };
        let Response::Pred { peak, mem } = Response::parse(&r.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(peak.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(mem.unwrap().to_bits(), (0.3f64 + 0.1).to_bits());
    }

    #[test]
    fn float_encoding_is_bit_exact() {
        let peak = 0.1 + 0.2; // not representable "nicely"
        let r = Response::Pred { peak, mem: None };
        let Response::Pred { peak: back, .. } = Response::parse(&r.encode()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(peak.to_bits(), back.to_bits());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(Request::parse(""), Err(ProtoError::Empty));
        assert_eq!(Request::parse("   "), Err(ProtoError::Empty));
        assert!(matches!(
            Request::parse("FROBNICATE a 1"),
            Err(ProtoError::UnknownVerb { .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 0.5 0.5"),
            Err(ProtoError::Arity {
                verb: "OBSERVE",
                expected: 6,
                got: 5
            })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 NaN 0.5 7"),
            Err(ProtoError::OutOfDomain { field: "usage", .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 2:0 -0.5 0.5 7"),
            Err(ProtoError::OutOfDomain { field: "usage", .. })
        ));
        assert!(matches!(
            Request::parse("OBSERVE a 1 20 0.5 0.5 7"),
            Err(ProtoError::BadTaskId { .. })
        ));
        assert!(matches!(
            Request::parse("PREDICT a x"),
            Err(ProtoError::BadNumber {
                field: "machine",
                ..
            })
        ));
        let long = format!("PREDICT a {}", "9".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            Request::parse(&long),
            Err(ProtoError::LineTooLong { .. })
        ));
    }

    #[test]
    fn stats_round_trip() {
        let s = StatsSnapshot {
            epoch: (1_700_000_000 << 16) | 3,
            observes: 10,
            predicts: 2,
            admits: 1,
            busy: 3,
            stale: 0,
            errors: 1,
            machines: 4,
            faults: 2,
            timeouts: 1,
            conn_rejects: 5,
            p50_us: 12.5,
            p99_us: 99.25,
            mean_us: 20.75,
            max_us: 1000.0,
        };
        let r = Response::Stats(s.clone());
        assert_eq!(Response::parse(&r.encode()).unwrap(), Response::Stats(s));
    }

    #[test]
    fn metrics_round_trip() {
        assert_eq!(Request::parse("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.encode(), "METRICS");
        let r = Response::Metrics {
            exposition: "v=1 serve.busy=3 serve.latency_us.p50=12.5".to_string(),
        };
        assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        // A payload that is not a valid exposition is rejected at parse.
        assert!(Response::parse("METRICS v=2 a=1").is_err());
        assert!(Response::parse("METRICS nonsense").is_err());
    }

    #[test]
    fn ring_request_round_trips() {
        assert_eq!(Request::parse("RING").unwrap(), Request::Ring);
        assert_eq!(Request::Ring.encode(), "RING");
        assert_eq!(Request::parse("HANDOFF").unwrap(), Request::Handoff);
        let set = Request::RingSet {
            nodes: 3,
            vnodes: 64,
            seed: 17,
            generation: 9,
            addrs: vec!["127.0.0.1:4001".into(), "127.0.0.1:4002".into()],
        };
        let line = set.encode();
        assert_eq!(line, "RINGSET 3 64 17 9 127.0.0.1:4001,127.0.0.1:4002");
        assert_eq!(Request::parse(&line).unwrap(), set);
        let empty = Request::RingSet {
            nodes: 1,
            vnodes: 4,
            seed: 0,
            generation: 0,
            addrs: vec![],
        };
        assert_eq!(empty.encode(), "RINGSET 1 4 0 0 -");
        assert_eq!(Request::parse(&empty.encode()).unwrap(), empty);
        assert!(Request::parse("RINGSET 3 64 17").is_err());
    }

    #[test]
    fn ring_response_round_trips() {
        let r = Response::Ring {
            nodes: 3,
            vnodes: 64,
            seed: 17,
            generation: 70000,
            epoch: pack_epoch(1_700_000_000, 70000),
            addrs: vec!["127.0.0.1:4001".into()],
        };
        assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        let bare = Response::Ring {
            nodes: 2,
            vnodes: 8,
            seed: 1,
            generation: 0,
            epoch: 0,
            addrs: vec![],
        };
        assert_eq!(Response::parse(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn epoch_generation_wraps_at_16_bits() {
        // The documented wrap: generations 2^16 apart pack identically
        // when the start stamp matches, so the epoch word alone cannot
        // distinguish them — full generations travel in RING responses.
        let start = 1_700_000_000;
        let g = 7;
        assert_eq!(pack_epoch(start, g), pack_epoch(start, g + 65_536));
        assert_eq!(epoch_ring_generation(pack_epoch(start, g + 65_536)), g);
        // A different start stamp still changes the full word even at a
        // wrapped generation — which is why clients must compare the
        // whole 64-bit epoch, never just the unpacked generation.
        assert_ne!(pack_epoch(start, g), pack_epoch(start + 1, g + 65_536));
        assert_eq!(
            epoch_ring_generation(pack_epoch(start, g)),
            epoch_ring_generation(pack_epoch(start + 1, g + 65_536)),
        );
        assert_eq!(epoch_start_secs(pack_epoch(start, g)), start);
    }

    #[test]
    fn err_detail_keeps_spaces_and_strips_newlines() {
        let r = Response::Err {
            code: ErrCode::Stale,
            detail: "tick 5 already\nflushed".into(),
        };
        let line = r.encode();
        assert!(!line.contains('\n'));
        let back = Response::parse(&line).unwrap();
        assert_eq!(
            back,
            Response::Err {
                code: ErrCode::Stale,
                detail: "tick 5 already flushed".into()
            }
        );
    }
}
