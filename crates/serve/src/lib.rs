//! `oc-serve` — an online peak-prediction service.
//!
//! The rest of the workspace evaluates peak predictors *offline*: a
//! simulator replays a finished trace through a `MachineView` and records
//! what each predictor would have said. This crate turns the same predictor
//! stack into an *online service* of the kind the paper's Borglet/Borgmaster
//! split implies: node agents stream per-task usage samples in, a scheduler
//! asks for per-machine peak predictions and admission checks.
//!
//! Architecture (see `DESIGN.md`, "Online serving"):
//!
//! * [`proto`] — a line-delimited text protocol (`OBSERVE` / `PREDICT` /
//!   `ADMIT` / `STATS` / `SHUTDOWN`) with a hand-rolled, fully typed codec.
//! * [`shard`] — machines partitioned across shard worker threads, each
//!   exclusively owning its machines' [`oc_core::IncrementalView`]s behind a
//!   bounded MPSC queue. Full queue ⇒ retryable `BUSY`, never unbounded
//!   buffering.
//! * [`server`] — the TCP front end: per-connection handler threads,
//!   pipelining-friendly (one response line per request line, in order),
//!   graceful drain-then-snapshot shutdown.
//! * [`metrics`] — per-shard counters plus a service-latency histogram
//!   (reusing [`oc_stats::Histogram`]), merged bin-wise for `STATS`.
//! * [`loadgen`] — a harness that replays an [`oc_trace::WorkloadGenerator`]
//!   cell against a server at a target QPS and reports achieved throughput
//!   and latency percentiles.
//!
//! Served predictions are bit-identical to the offline simulator's (clamped)
//! predictions on the same sample stream — `tests/serve_smoke.rs` at the
//! workspace root proves it.
//!
//! # Examples
//!
//! ```
//! use oc_serve::{LoadgenConfig, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
//! let report = oc_serve::loadgen::run(
//!     server.addr(),
//!     &LoadgenConfig { machines: 2, ticks: 4, connections: 1, ..Default::default() },
//! )
//! .unwrap();
//! assert_eq!(report.errors, 0);
//! let stats = server.shutdown();
//! assert_eq!(stats.observes + stats.predicts, report.ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod shard;

pub use config::ServeConfig;
pub use error::ServeError;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use proto::{ErrCode, ProtoError, Request, Response, StatsSnapshot};
pub use server::Server;
