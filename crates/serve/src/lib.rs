//! `oc-serve` — an online peak-prediction service.
//!
//! The rest of the workspace evaluates peak predictors *offline*: a
//! simulator replays a finished trace through a `MachineView` and records
//! what each predictor would have said. This crate turns the same predictor
//! stack into an *online service* of the kind the paper's Borglet/Borgmaster
//! split implies: node agents stream per-task usage samples in, a scheduler
//! asks for per-machine peak predictions and admission checks.
//!
//! Architecture (see `DESIGN.md`, "Online serving"):
//!
//! * [`proto`] — a line-delimited text protocol (`OBSERVE` / `PREDICT` /
//!   `ADMIT` / `STATS` / `METRICS` / `SHUTDOWN`) with a hand-rolled, fully
//!   typed codec; the wire spec is `docs/PROTOCOL.md`.
//! * [`shard`] — machines partitioned across shard worker threads, each
//!   exclusively owning its machines' [`oc_core::IncrementalView`]s behind a
//!   bounded MPSC queue. Full queue ⇒ retryable `BUSY`, never unbounded
//!   buffering.
//! * [`server`] — the TCP front end: a readiness-driven accept loop
//!   feeding one of two frontends behind [`config::Frontend`] — the
//!   default *reactor* (a small fixed pool of event-loop threads
//!   multiplexing every connection over `epoll`/`poll` via the vendored
//!   `oc-reactor` crate) or the original *threaded* frontend (one handler
//!   thread per connection). Both enforce read/write/idle deadlines and a
//!   max-connections cap, stay pipelining-friendly (one response line per
//!   request line, in order), and share the graceful drain-then-snapshot
//!   shutdown that joins every frontend thread.
//! * [`conn`] — the per-connection protocol machinery both frontends
//!   share: the [`conn::LineAccumulator`] read state machine, the observe
//!   micro-batcher, and the line dispatch path — so the two frontends'
//!   responses are bit-identical by construction.
//! * [`metrics`] — per-shard counters plus a service-latency histogram
//!   (reusing [`oc_stats::Histogram`]), merged bin-wise for `STATS` and
//!   into the unified registry for `METRICS`.
//! * [`fault`] — deterministic, seeded fault injection (delayed / partial /
//!   dropped reads and writes) wrapping any connection stream, for chaos
//!   testing the lifecycle paths above.
//!
//! The retrying client and the load generator live in the `oc-client`
//! crate, which depends on this one for the protocol types.
//!
//! Served predictions are bit-identical to the offline simulator's (clamped)
//! predictions on the same sample stream — `tests/serve_smoke.rs` at the
//! workspace root proves it.
//!
//! # Examples
//!
//! ```
//! use oc_serve::{ServeConfig, Server};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! conn.write_all(b"OBSERVE cell 0 1:0 0.2 0.5 1\n").unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap())
//!     .read_line(&mut line)
//!     .unwrap();
//! assert_eq!(line.trim_end(), "OK");
//! drop(conn);
//! let stats = server.shutdown();
//! assert_eq!(stats.observes, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod accept;
pub mod config;
pub mod conn;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod proto;
pub(crate) mod reactor;
pub mod server;
pub mod shard;

pub use config::{Frontend, ServeConfig};
pub use error::ServeError;
pub use fault::{FaultCounters, FaultKinds, FaultPlan, FaultStream};
pub use proto::{ErrCode, ProtoError, Request, Response, StatsSnapshot};
pub use server::{Server, ShutdownOutcome};
