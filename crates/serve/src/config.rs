//! Service configuration.

use crate::error::ServeError;
use oc_core::config::SimConfig;
use oc_core::ingest::DEFAULT_MAX_GAP;
use oc_core::predictor::PredictorSpec;

/// Configuration of one [`crate::server::Server`].
///
/// # Examples
///
/// ```
/// use oc_serve::config::ServeConfig;
///
/// let cfg = ServeConfig::default().with_shards(2).with_queue_depth(64);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Number of shard workers machines are partitioned across.
    pub shards: usize,
    /// Bound of each shard's request queue. A full queue answers `BUSY`
    /// instead of buffering — the backpressure contract.
    pub queue_depth: usize,
    /// Capacity assigned to machines on first observation, in the same
    /// units as usage/limit samples.
    pub machine_capacity: f64,
    /// Node-agent state parameters (warm-up, window sizes, metric).
    pub sim: SimConfig,
    /// The predictor served by `PREDICT`/`ADMIT`.
    pub predictor: PredictorSpec,
    /// Bound on empty ticks synthesized between two samples of a machine.
    pub max_tick_gap: u64,
}

impl Default for ServeConfig {
    /// Ephemeral local port, 4 shards, 4096-deep queues, the paper's
    /// simulation predictor and node-agent parameters.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_depth: 4096,
            machine_capacity: 1.0,
            sim: SimConfig::default(),
            predictor: PredictorSpec::paper_max(),
            max_tick_gap: DEFAULT_MAX_GAP,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-machine capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.machine_capacity = capacity;
        self
    }

    /// Sets the served predictor.
    pub fn with_predictor(mut self, spec: PredictorSpec) -> Self {
        self.predictor = spec;
        self
    }

    /// Sets the node-agent state parameters.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid shard/queue/capacity
    /// setting and propagates [`SimConfig`]/[`PredictorSpec`] validation.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be >= 1".into()));
        }
        if !self.machine_capacity.is_finite() || self.machine_capacity <= 0.0 {
            return Err(ServeError::Config(format!(
                "machine_capacity {} must be finite and > 0",
                self.machine_capacity
            )));
        }
        self.sim.validate()?;
        self.predictor.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_settings_are_rejected()
    {
        assert!(ServeConfig::default().with_shards(0).validate().is_err());
        assert!(ServeConfig::default()
            .with_queue_depth(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_capacity(f64::NAN)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_capacity(0.0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_predictor(PredictorSpec::NSigma { n: -1.0 })
            .validate()
            .is_err());
    }
}
