//! Service configuration.

use crate::error::ServeError;
use crate::fault::FaultPlan;
use oc_core::config::SimConfig;
use oc_core::ingest::DEFAULT_MAX_GAP;
use oc_core::predictor::PredictorSpec;
use std::sync::Arc;
use std::time::Duration;

/// Default bound on how long a connection may sit without delivering a
/// complete request before the server closes it.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default per-write deadline: a peer that stops reading for this long is
/// treated as dead so its handler thread can be reclaimed.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default cap on concurrently served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Which connection-handling frontend a [`crate::server::Server`] runs.
///
/// Both frontends speak the same wire protocol with bit-identical
/// responses (`tests/serve_smoke.rs` pins this) and share the shard
/// pool, deadlines, connection cap, fault injection, and the graceful
/// drain-then-snapshot shutdown. They differ only in how connections
/// are multiplexed onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// One handler thread per connection (the original design). Simple
    /// and portable, but caps out at a few thousand connections — each
    /// costs a thread stack and a scheduler entry.
    Threaded,
    /// A small fixed pool of reactor threads driving per-connection
    /// state machines over readiness events (`epoll`/`poll` via
    /// `oc-reactor`). Tens of thousands of mostly-idle connections
    /// multiplex onto a few threads. Unix only — on other targets
    /// [`crate::server::Server::start`] falls back with an error and the
    /// threaded frontend must be selected explicitly.
    Reactor,
}

impl Default for Frontend {
    /// [`Frontend::Reactor`] on Unix, [`Frontend::Threaded`] elsewhere.
    fn default() -> Self {
        if cfg!(unix) {
            Frontend::Reactor
        } else {
            Frontend::Threaded
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Frontend::Threaded => "threaded",
            Frontend::Reactor => "reactor",
        })
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Frontend::Threaded),
            "reactor" => Ok(Frontend::Reactor),
            other => Err(format!(
                "unknown frontend '{other}' (expected 'threaded' or 'reactor')"
            )),
        }
    }
}

/// How a machine key relates to this process under its cluster ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRole {
    /// This process is the key's primary owner: all verbs accepted.
    Owner,
    /// This process is the key's ring successor: it accepts the mirrored
    /// ingest stream (`OBSERVE`) and serves reads (`PREDICT`/`ADMIT`)
    /// so clients can fail over when the owner dies. Clients should
    /// prefer the owner while it is alive.
    Replica,
    /// Some other process owns the key: every data-plane verb is
    /// answered `ERR not-mine` so a stale client re-resolves the ring.
    Remote,
}

/// Cluster ownership classifier: maps a machine-key hash
/// ([`crate::shard::key_hash`]) to this process's [`KeyRole`] for it.
///
/// A cheap shared closure rather than a concrete ring type so `oc-serve`
/// stays ring-agnostic — `oc-cluster` builds one from its consistent-hash
/// ring; tests can use any partition. `None` in [`ServeConfig`] (the
/// default) means standalone serving: every key is [`KeyRole::Owner`].
#[derive(Clone)]
pub struct OwnershipMap(Arc<dyn Fn(u64) -> KeyRole + Send + Sync>);

impl OwnershipMap {
    /// Wraps a key-hash → role classifier.
    pub fn new(f: impl Fn(u64) -> KeyRole + Send + Sync + 'static) -> OwnershipMap {
        OwnershipMap(Arc::new(f))
    }

    /// The role this process plays for a key hash.
    pub fn role_of(&self, key_hash: u64) -> KeyRole {
        (self.0)(key_hash)
    }
}

impl std::fmt::Debug for OwnershipMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnershipMap(..)")
    }
}

/// Rebuilds this process's [`OwnershipMap`] for a new ring geometry —
/// the hook the online `RINGSET` verb needs so a member can adopt a
/// pushed ring without restarting, while `oc-serve` itself stays
/// ring-agnostic (`oc-cluster` installs a factory that hashes the new
/// spec; the factory closure captures which ring index this process is).
///
/// Called with `(nodes, vnodes, seed)` of the pushed ring. Returns
/// `None` when this process holds no slot under the new geometry (its
/// index is outside `0..nodes`), which makes the member reject the push.
#[derive(Clone)]
pub struct OwnershipFactory(Arc<dyn Fn(usize, usize, u64) -> Option<OwnershipMap> + Send + Sync>);

impl OwnershipFactory {
    /// Wraps a `(nodes, vnodes, seed) -> OwnershipMap` builder.
    pub fn new(
        f: impl Fn(usize, usize, u64) -> Option<OwnershipMap> + Send + Sync + 'static,
    ) -> OwnershipFactory {
        OwnershipFactory(Arc::new(f))
    }

    /// Builds the ownership map for a pushed ring geometry.
    pub fn build(&self, nodes: usize, vnodes: usize, seed: u64) -> Option<OwnershipMap> {
        (self.0)(nodes, vnodes, seed)
    }
}

impl std::fmt::Debug for OwnershipFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnershipFactory(..)")
    }
}

/// Static ring geometry a clustered member reports through the `RING`
/// verb (the generation lives in [`ServeConfig::ring_generation`] and is
/// updated online by `RINGSET`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingInfo {
    /// Ring member count.
    pub nodes: usize,
    /// Virtual nodes per member.
    pub vnodes: usize,
    /// Ring hash seed.
    pub seed: u64,
}

/// Configuration of one [`crate::server::Server`].
///
/// # Examples
///
/// ```
/// use oc_serve::config::ServeConfig;
///
/// let cfg = ServeConfig::default().with_shards(2).with_queue_depth(64);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Number of shard workers machines are partitioned across.
    pub shards: usize,
    /// Bound of each shard's request queue. A full queue answers `BUSY`
    /// instead of buffering — the backpressure contract.
    pub queue_depth: usize,
    /// Capacity assigned to machines on first observation, in the same
    /// units as usage/limit samples.
    pub machine_capacity: f64,
    /// Node-agent state parameters (warm-up, window sizes, metric).
    pub sim: SimConfig,
    /// The predictor served by `PREDICT`/`ADMIT`.
    pub predictor: PredictorSpec,
    /// Bound on empty ticks synthesized between two samples of a machine.
    pub max_tick_gap: u64,
    /// Close a connection that delivers no complete request for this long.
    /// Bounds the handler threads an idle or stalled peer can pin.
    pub idle_timeout: Duration,
    /// Per-write deadline; a peer that stops reading its responses for
    /// this long is disconnected.
    pub write_timeout: Duration,
    /// Cap on concurrently served connections; excess connects are
    /// answered `ERR conn-limit` and closed (retryable).
    pub max_connections: usize,
    /// Optional seeded fault injection on every accepted connection
    /// (chaos testing). `None` in production.
    pub faults: Option<FaultPlan>,
    /// Which connection-handling frontend to run (see [`Frontend`]).
    pub frontend: Frontend,
    /// Reactor thread count for [`Frontend::Reactor`]; `0` sizes the pool
    /// automatically from the host's available parallelism (clamped to
    /// `[1, 4]` — readiness dispatch is cheap, the shard pool does the
    /// heavy lifting). Ignored by [`Frontend::Threaded`].
    pub reactor_threads: usize,
    /// Cluster ownership classifier; `None` (standalone) treats every
    /// key as [`KeyRole::Owner`].
    pub ownership: Option<OwnershipMap>,
    /// Cluster ring generation folded into the server's `epoch` stamp
    /// (see [`crate::proto::pack_epoch`]); bump it when the ring that
    /// produced [`ServeConfig::ownership`] changes. Updated online when
    /// a supervisor pushes `RINGSET`.
    pub ring_generation: u64,
    /// Ring geometry reported by the `RING` verb; `None` (standalone)
    /// makes `RING` answer `ERR internal`.
    pub ring_info: Option<RingInfo>,
    /// Rebuilds [`ServeConfig::ownership`] when a `RINGSET` push changes
    /// the ring geometry. Without a factory, a member with an ownership
    /// map rejects geometry changes (it could not classify keys under
    /// the new ring).
    pub ownership_factory: Option<OwnershipFactory>,
    /// Record every successfully ingested sample in a per-shard handoff
    /// log, dumpable via the `HANDOFF` verb — the state-transfer source
    /// for member replacement. Memory grows with total ingested samples,
    /// so fleet-scale runs (e.g. the million-machine bench) leave it off.
    pub handoff_log: bool,
}

impl Default for ServeConfig {
    /// Ephemeral local port, 4 shards, 4096-deep queues, the paper's
    /// simulation predictor and node-agent parameters.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_depth: 4096,
            machine_capacity: 1.0,
            sim: SimConfig::default(),
            predictor: PredictorSpec::paper_max(),
            max_tick_gap: DEFAULT_MAX_GAP,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            faults: None,
            frontend: Frontend::default(),
            reactor_threads: 0,
            ownership: None,
            ring_generation: 0,
            ring_info: None,
            ownership_factory: None,
            handoff_log: false,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-machine capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.machine_capacity = capacity;
        self
    }

    /// Sets the served predictor.
    pub fn with_predictor(mut self, spec: PredictorSpec) -> Self {
        self.predictor = spec;
        self
    }

    /// Sets the node-agent state parameters.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the idle-connection deadline.
    pub fn with_idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }

    /// Sets the per-write deadline.
    pub fn with_write_timeout(mut self, d: Duration) -> Self {
        self.write_timeout = d;
        self
    }

    /// Sets the concurrent-connection cap.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Enables seeded fault injection on accepted connections.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Selects the connection-handling frontend.
    pub fn with_frontend(mut self, frontend: Frontend) -> Self {
        self.frontend = frontend;
        self
    }

    /// Sets the reactor thread count (`0` = auto-size from the host).
    pub fn with_reactor_threads(mut self, threads: usize) -> Self {
        self.reactor_threads = threads;
        self
    }

    /// Installs a cluster ownership classifier.
    pub fn with_ownership(mut self, map: OwnershipMap) -> Self {
        self.ownership = Some(map);
        self
    }

    /// Sets the ring generation stamped into the server's `epoch`.
    pub fn with_ring_generation(mut self, generation: u64) -> Self {
        self.ring_generation = generation;
        self
    }

    /// Sets the ring geometry reported by the `RING` verb.
    pub fn with_ring_info(mut self, info: RingInfo) -> Self {
        self.ring_info = Some(info);
        self
    }

    /// Installs the ownership rebuild hook for `RINGSET` pushes.
    pub fn with_ownership_factory(mut self, factory: OwnershipFactory) -> Self {
        self.ownership_factory = Some(factory);
        self
    }

    /// Enables the per-shard handoff sample log (`HANDOFF` verb).
    pub fn with_handoff_log(mut self, enabled: bool) -> Self {
        self.handoff_log = enabled;
        self
    }

    /// The reactor pool size [`Frontend::Reactor`] will actually run:
    /// `reactor_threads`, or an auto-sized value when it is `0`.
    pub fn effective_reactor_threads(&self) -> usize {
        if self.reactor_threads > 0 {
            self.reactor_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 4)
        }
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid shard/queue/capacity
    /// setting and propagates [`SimConfig`]/[`PredictorSpec`] validation.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be >= 1".into()));
        }
        if !self.machine_capacity.is_finite() || self.machine_capacity <= 0.0 {
            return Err(ServeError::Config(format!(
                "machine_capacity {} must be finite and > 0",
                self.machine_capacity
            )));
        }
        if self.idle_timeout.is_zero() {
            return Err(ServeError::Config("idle_timeout must be > 0".into()));
        }
        if self.write_timeout.is_zero() {
            return Err(ServeError::Config("write_timeout must be > 0".into()));
        }
        if self.max_connections == 0 {
            return Err(ServeError::Config("max_connections must be >= 1".into()));
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        self.sim.validate()?;
        self.predictor.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn frontend_parses_and_displays() {
        assert_eq!("threaded".parse::<Frontend>().unwrap(), Frontend::Threaded);
        assert_eq!("reactor".parse::<Frontend>().unwrap(), Frontend::Reactor);
        assert!("tokio".parse::<Frontend>().is_err());
        assert_eq!(Frontend::Threaded.to_string(), "threaded");
        assert_eq!(Frontend::Reactor.to_string(), "reactor");
    }

    #[test]
    fn reactor_threads_auto_sizes_when_zero() {
        let auto = ServeConfig::default().effective_reactor_threads();
        assert!((1..=4).contains(&auto));
        assert_eq!(
            ServeConfig::default()
                .with_reactor_threads(7)
                .effective_reactor_threads(),
            7
        );
    }

    #[test]
    fn invalid_settings_are_rejected() {
        assert!(ServeConfig::default().with_shards(0).validate().is_err());
        assert!(ServeConfig::default()
            .with_queue_depth(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_capacity(f64::NAN)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_capacity(0.0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_predictor(PredictorSpec::NSigma { n: -1.0 })
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_idle_timeout(Duration::ZERO)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_write_timeout(Duration::ZERO)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_max_connections(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_faults(FaultPlan::new(1, 2.0))
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_faults(FaultPlan::new(1, 0.05))
            .validate()
            .is_ok());
    }
}
