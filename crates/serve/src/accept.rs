//! The accept loop: takes connections off the listener and hands them to
//! the configured frontend.
//!
//! The listener itself is readiness-driven (an `oc-reactor` poller plus
//! a waker), so the accept thread sleeps until a connection arrives or
//! the server is stopped — there is no fixed-interval stop poll and no
//! shutdown latency floor. A `set_nonblocking` failure on an accepted
//! socket is counted in `serve.accept.errors` and traced, never silently
//! dropped.

use crate::config::Frontend;
use crate::reactor::ReactorPool;
use crate::server::{reject_over_cap, Shared};
use crate::shard::ShardPool;
use oc_reactor::{Events, Interest, Poller, Waker};
use oc_telemetry::trace;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Poller token for the listening socket.
const LISTENER_TOKEN: usize = 0;
/// Poller token for the accept thread's shutdown waker.
const ACCEPT_WAKE_TOKEN: usize = 1;

/// How long the accept loop sleeps after a resource-exhaustion accept
/// error (e.g. `EMFILE`) before trying again, so it cannot spin.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Fallback wait bound so registry reaping still happens on a quiet
/// listener.
const ACCEPT_SWEEP: Duration = Duration::from_millis(500);

/// The connection-handling backend the accept loop feeds.
pub(crate) enum FrontendRuntime {
    /// One handler thread per accepted connection.
    Threaded,
    /// The shared reactor pool; accepted sockets are made non-blocking
    /// and submitted round-robin.
    Reactor(Arc<ReactorPool>),
}

impl FrontendRuntime {
    /// Builds the runtime for the configured frontend.
    pub(crate) fn start(
        shared: &Arc<Shared>,
        pool: &Arc<ShardPool>,
    ) -> std::io::Result<FrontendRuntime> {
        match shared.cfg.frontend {
            Frontend::Threaded => Ok(FrontendRuntime::Threaded),
            Frontend::Reactor => {
                let threads = shared.cfg.reactor_threads_effective;
                let rp = ReactorPool::start(threads, pool, shared)?;
                Ok(FrontendRuntime::Reactor(Arc::new(rp)))
            }
        }
    }

    /// The reactor pool, if this runtime drives one.
    pub(crate) fn reactor(&self) -> Option<Arc<ReactorPool>> {
        match self {
            FrontendRuntime::Threaded => None,
            FrontendRuntime::Reactor(rp) => Some(Arc::clone(rp)),
        }
    }
}

/// Runs the accept loop until the stop flag is raised. The listener is
/// non-blocking and polled for readiness together with `waker` (which
/// [`crate::server::Server`] fires on shutdown).
pub(crate) fn accept_loop(
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    frontend: FrontendRuntime,
    pool: Arc<ShardPool>,
    shared: Arc<Shared>,
) {
    let mut events = Events::with_capacity(8);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if poller.wait(&mut events, Some(ACCEPT_SWEEP)).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished handler threads so the threaded frontend's
        // connection cap tracks reality.
        shared.registry.reap();
        let mut accept_ready = false;
        for ev in &events {
            match ev.token() {
                ACCEPT_WAKE_TOKEN => waker.drain(),
                LISTENER_TOKEN => accept_ready = true,
                _ => {}
            }
        }
        if !accept_ready {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => handle_accepted(stream, &frontend, &pool, &shared),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient exhaustion (EMFILE/ENFILE/ECONNABORTED):
                    // count it, note it in the trace, and back off so a
                    // full fd table cannot spin this thread.
                    shared.accept_errors.inc();
                    trace::event(
                        "serve.accept.error",
                        e.raw_os_error().unwrap_or(0) as u64,
                        0,
                    );
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    break;
                }
            }
        }
    }
}

/// Registers an accepted socket with the configured frontend, enforcing
/// the connection cap.
fn handle_accepted(
    stream: TcpStream,
    frontend: &FrontendRuntime,
    pool: &Arc<ShardPool>,
    shared: &Arc<Shared>,
) {
    match frontend {
        FrontendRuntime::Threaded => {
            // The listener is non-blocking, so accepted sockets inherit
            // non-blocking on some platforms: the threaded frontend
            // needs blocking semantics back. A failure here used to
            // drop the connection silently; now it is counted and
            // traced like any accept-path error.
            if let Err(e) = stream.set_nonblocking(false) {
                shared.accept_errors.inc();
                trace::event(
                    "serve.accept.error",
                    e.raw_os_error().unwrap_or(0) as u64,
                    0,
                );
                return;
            }
            if shared.registry.active() >= shared.cfg.max_connections {
                shared.conn_rejects.inc();
                trace::event("serve.conn.reject", shared.registry.active() as u64, 0);
                reject_over_cap(stream, shared);
                return;
            }
            let conn_id = shared.registry.begin();
            shared.connections.inc();
            let pool = Arc::clone(pool);
            let shared2 = Arc::clone(shared);
            let spawned = std::thread::Builder::new()
                .name(format!("oc-serve-conn-{conn_id}"))
                .spawn(move || {
                    let _ = crate::conn::handle_connection(stream, &pool, &shared2, conn_id);
                    shared2.connections.dec();
                    shared2.registry.end(conn_id);
                });
            match spawned {
                Ok(handle) => shared.registry.register(conn_id, handle),
                Err(e) => {
                    // Thread spawn failed (resource exhaustion): undo the
                    // bookkeeping and surface it like an accept error.
                    shared.connections.dec();
                    shared.registry.end(conn_id);
                    shared.accept_errors.inc();
                    trace::event(
                        "serve.accept.error",
                        e.raw_os_error().unwrap_or(0) as u64,
                        0,
                    );
                }
            }
        }
        FrontendRuntime::Reactor(rp) => {
            if let Err(e) = stream.set_nonblocking(true) {
                shared.accept_errors.inc();
                trace::event(
                    "serve.accept.error",
                    e.raw_os_error().unwrap_or(0) as u64,
                    0,
                );
                return;
            }
            if shared.connections.get() >= shared.cfg.max_connections as i64 {
                shared.conn_rejects.inc();
                trace::event(
                    "serve.conn.reject",
                    shared.connections.get().max(0) as u64,
                    0,
                );
                reject_over_cap(stream, shared);
                return;
            }
            shared.connections.inc();
            rp.submit(stream);
        }
    }
}

/// Creates the accept poller with the listener registered, switching the
/// listener to non-blocking mode. The waker is registered under
/// [`ACCEPT_WAKE_TOKEN`] and returned for the shutdown path.
#[cfg(unix)]
pub(crate) fn accept_poller(listener: &TcpListener) -> std::io::Result<(Poller, Arc<Waker>)> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    let waker = Arc::new(Waker::new(&poller, ACCEPT_WAKE_TOKEN)?);
    Ok((poller, waker))
}

/// Non-Unix targets have no readiness backend; [`Poller::new`] reports
/// `Unsupported` and [`crate::server::Server::start`] surfaces it.
#[cfg(not(unix))]
pub(crate) fn accept_poller(listener: &TcpListener) -> std::io::Result<(Poller, Arc<Waker>)> {
    let _ = listener;
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new(&poller, ACCEPT_WAKE_TOKEN)?);
    Ok((poller, waker))
}
