//! The sharded state layer.
//!
//! Machines are partitioned across `N` shard workers by a stable hash of
//! `(cell, machine)`. Each worker is a plain actor: it exclusively owns the
//! [`IncrementalView`]s of its machines plus its counters, and drains one
//! bounded MPSC queue. No machine state is ever shared between threads, so
//! there are no locks on the hot path — the queue is the only
//! synchronization point.
//!
//! **Backpressure contract.** Queues are bounded
//! ([`ServeConfig::queue_depth`]); producers use non-blocking
//! `try_send`. A full queue means the caller gets [`SendFail::Busy`] and
//! the request is *dropped*, never buffered — the server translates this
//! into the retryable `BUSY` response. Memory per shard is therefore
//! bounded by `queue_depth` messages plus live machine state, no matter
//! how hard clients push.
//!
//! **Ordering.** A connection's requests for one machine are enqueued in
//! arrival order and each queue is FIFO, so per-machine sample order is
//! preserved end to end as long as one machine's stream stays on one
//! connection (the load generator pins machines to connections for exactly
//! this reason).

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::ShardMetrics;
use crate::proto::{ErrCode, Response};
use oc_core::ingest::IncrementalView;
use oc_core::predictor::{clamp_prediction, clamp_prediction_lane, PeakPredictor};
use oc_core::CoreError;
use oc_stats::resource::{Res2, CPU, MEM};
use oc_telemetry::{Gauge, MetricsRegistry};
use oc_trace::ids::{CellId, MachineId, TaskId};
use oc_trace::time::Tick;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A machine's routing key.
pub type MachineKey = (CellId, MachineId);

/// Samples carried by one coalesced [`ShardMsg::ObserveBatch`] message.
/// Small and fixed: the chunk lives inline in one boxed message, so the
/// `sync_channel` hop and the shard wakeup are amortized across up to
/// this many samples while a stalled flush can only ever defer this many
/// acknowledgements. Sized for the high fan-in workload, where whole
/// `BATCH` frames stream in per connection and every chunk send costs a
/// queue lock plus a possible futex wake.
pub const OBS_CHUNK: usize = 64;

/// One coalesced sample inside an [`ObserveChunk`].
#[derive(Debug, Clone, Default)]
pub struct ObserveItem {
    /// Routing key (every item of a chunk routes to the same shard, but
    /// not necessarily to the same machine).
    pub key: MachineKey,
    /// The sampled task.
    pub task: TaskId,
    /// Observed usage.
    pub usage: f64,
    /// Task limit.
    pub limit: f64,
    /// Optional memory lane as `(usage, limit)`; `Some` for samples that
    /// arrived in the multi-resource `OBSERVE` form.
    pub mem: Option<(f64, f64)>,
    /// Sample tick.
    pub tick: Tick,
}

/// A fixed-capacity run of consecutive same-shard samples, built by the
/// connection handler's micro-batcher and applied by the worker in
/// arrival order (identical outcome to sending each item individually).
#[derive(Debug)]
pub struct ObserveChunk {
    /// The samples; only `items[..len]` are meaningful.
    pub items: [ObserveItem; OBS_CHUNK],
    /// Number of live items.
    pub len: usize,
    /// Enqueue instant of the chunk, for per-item service-latency
    /// accounting.
    pub enqueued: Instant,
}

impl ObserveChunk {
    /// An empty chunk stamped `now`.
    pub fn new() -> ObserveChunk {
        ObserveChunk {
            // `[T; 64]` has no `Default` impl (std stops at 32).
            items: std::array::from_fn(|_| ObserveItem::default()),
            len: 0,
            enqueued: Instant::now(),
        }
    }
}

impl Default for ObserveChunk {
    fn default() -> ObserveChunk {
        ObserveChunk::new()
    }
}

/// One message on a shard queue.
#[derive(Debug)]
pub enum ShardMsg {
    /// Ingest one per-task sample (fire-and-forget; acked on enqueue).
    Observe {
        /// Routing key.
        key: MachineKey,
        /// The sampled task.
        task: TaskId,
        /// Observed usage.
        usage: f64,
        /// Task limit.
        limit: f64,
        /// Optional memory lane as `(usage, limit)`.
        mem: Option<(f64, f64)>,
        /// Sample tick.
        tick: Tick,
        /// Enqueue instant, for service-latency accounting.
        enqueued: Instant,
    },
    /// Ingest a coalesced run of same-shard samples (fire-and-forget;
    /// acked on enqueue). Applied item by item in order — outcome
    /// identical to the equivalent sequence of `Observe` messages, but
    /// with one queue hop for the whole run.
    ObserveBatch(Box<ObserveChunk>),
    /// Predict a machine's peak; the response is sent on `reply`.
    ///
    /// The reply is a `SyncSender` so callers choose the blocking
    /// behavior: the server uses capacity 1 (the worker never blocks),
    /// tests use a rendezvous channel to pause the worker on purpose.
    Predict {
        /// Routing key.
        key: MachineKey,
        /// `true` for the multi-resource form: the reply carries both the
        /// CPU and memory peaks (`PRED cpu,mem`).
        vector: bool,
        /// Reply channel.
        reply: SyncSender<Response>,
        /// Enqueue instant.
        enqueued: Instant,
    },
    /// Admission check; the response is sent on `reply`.
    Admit {
        /// Routing key.
        key: MachineKey,
        /// Candidate task limit.
        limit: f64,
        /// Reply channel.
        reply: SyncSender<Response>,
        /// Enqueue instant.
        enqueued: Instant,
    },
    /// Snapshot this shard's metrics.
    Snapshot {
        /// Reply channel.
        reply: SyncSender<ShardMetrics>,
    },
    /// Dump this shard's handoff log (empty when the log is disabled).
    /// Entries arrive in original ingest order, so per-machine sample
    /// order is preserved.
    Handoff {
        /// Reply channel for the log copy.
        reply: SyncSender<Vec<HandoffEntry>>,
    },
    /// Drain (everything already queued is processed first — the queue is
    /// FIFO), report final metrics, and exit.
    Shutdown {
        /// Reply channel for the final metrics.
        reply: SyncSender<ShardMetrics>,
    },
}

/// One successfully ingested sample, as recorded in a shard's handoff
/// log ([`ServeConfig::handoff_log`]). Replaying a machine's entries in
/// log order through ordinary `OBSERVE` lines reproduces its
/// [`IncrementalView`] bit-identically (arrival-order equivalence plus
/// shortest-round-trip float formatting), which is how a replacement
/// member rebuilds state from a survivor.
#[derive(Debug, Clone)]
pub struct HandoffEntry {
    /// Routing key.
    pub key: MachineKey,
    /// The sampled task.
    pub task: TaskId,
    /// Observed usage.
    pub usage: f64,
    /// Task limit.
    pub limit: f64,
    /// Optional memory lane as `(usage, limit)`; replayed in the same
    /// wire form it arrived in, so a vector stream rebuilds a vector view.
    pub mem: Option<(f64, f64)>,
    /// Sample tick.
    pub tick: Tick,
}

/// Why a `try_send` to a shard failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFail {
    /// The shard queue is full; the request was dropped (retryable).
    Busy,
    /// The shard has exited (server shutting down).
    Closed,
}

/// Stable hash of a machine key — the basis of [`ShardPool::route`] and
/// of the frontend predict cache's generation stripes, so "same stripe"
/// implies "same shard queue" and generation bumps are ordered with the
/// samples they describe.
pub fn key_hash(key: &MachineKey) -> u64 {
    // DefaultHasher::new() is deterministic (fixed keys), unlike
    // RandomState — routing must not change across connections.
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// The pool of shard workers.
#[derive(Debug)]
pub struct ShardPool {
    senders: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    /// Per-shard queue-depth gauges (`serve.shard.queue_depth.<i>`):
    /// incremented on every successful enqueue, decremented by the worker
    /// as it dequeues, so the gauge reads the live backlog.
    queue_depth: Vec<Arc<Gauge>>,
}

impl ShardPool {
    /// Spawns `cfg.shards` workers with bounded queues. Per-shard
    /// queue-depth gauges are registered on `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `cfg` fails validation (including
    /// an unbuildable predictor spec).
    pub fn new(cfg: &ServeConfig, registry: &MetricsRegistry) -> Result<ShardPool, ServeError> {
        cfg.validate()?;
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut queue_depth = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let (tx, rx) = sync_channel(cfg.queue_depth);
            let predictor = cfg.predictor.build()?;
            let worker_cfg = cfg.clone();
            let depth = registry.gauge(&format!("serve.shard.queue_depth.{i}"));
            let worker_depth = Arc::clone(&depth);
            let handle = std::thread::Builder::new()
                .name(format!("oc-serve-shard-{i}"))
                .spawn(move || shard_worker(rx, worker_cfg, predictor, worker_depth))
                .map_err(ServeError::Io)?;
            senders.push(tx);
            handles.push(handle);
            queue_depth.push(depth);
        }
        Ok(ShardPool {
            senders,
            handles,
            queue_depth,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard a key routes to: a stable hash, so one machine's state
    /// always lives on one worker.
    pub fn route(&self, key: &MachineKey) -> usize {
        (key_hash(key) % self.senders.len() as u64) as usize
    }

    /// Non-blocking enqueue onto the shard owning `key`'s machine.
    ///
    /// # Errors
    ///
    /// [`SendFail::Busy`] if the bounded queue is full (the message is
    /// dropped — backpressure), [`SendFail::Closed`] if the worker exited.
    pub fn try_send(&self, shard: usize, msg: ShardMsg) -> Result<(), SendFail> {
        self.senders[shard]
            .try_send(msg)
            .map(|()| self.queue_depth[shard].inc())
            .map_err(|e| match e {
                TrySendError::Full(_) => SendFail::Busy,
                TrySendError::Disconnected(_) => SendFail::Closed,
            })
    }

    /// Blocking enqueue (used for rare control messages like `STATS`).
    ///
    /// # Errors
    ///
    /// [`SendFail::Closed`] if the worker exited.
    pub fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), SendFail> {
        self.senders[shard]
            .send(msg)
            .map(|()| self.queue_depth[shard].inc())
            .map_err(|_| SendFail::Closed)
    }

    /// Like [`ShardPool::shutdown`] but callable through a shared
    /// reference, for when live connection handlers still hold the pool.
    /// Queues drain and workers exit; their threads are left to finish on
    /// their own instead of being joined.
    pub fn shutdown_shared(&self) -> ShardMetrics {
        let mut replies = Vec::with_capacity(self.senders.len());
        for (i, tx) in self.senders.iter().enumerate() {
            let (reply, rx) = sync_channel(1);
            if tx.send(ShardMsg::Shutdown { reply }).is_ok() {
                self.queue_depth[i].inc();
                replies.push(rx);
            }
        }
        let mut merged = ShardMetrics::default();
        for rx in replies {
            if let Ok(m) = rx.recv() {
                merged.merge(&m);
            }
        }
        merged
    }

    /// Sends `Shutdown` to every shard, waits for each to drain its queue,
    /// joins the workers, and returns the merged final metrics.
    pub fn shutdown(self) -> ShardMetrics {
        let mut replies = Vec::with_capacity(self.senders.len());
        for (i, tx) in self.senders.iter().enumerate() {
            let (reply, rx) = sync_channel(1);
            // A full queue makes this block until the worker drains —
            // that *is* the graceful part of the shutdown.
            if tx.send(ShardMsg::Shutdown { reply }).is_ok() {
                self.queue_depth[i].inc();
                replies.push(rx);
            }
        }
        drop(self.senders);
        let mut merged = ShardMetrics::default();
        for rx in replies {
            if let Ok(m) = rx.recv() {
                merged.merge(&m);
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
        merged
    }
}

/// The worker loop: exclusive owner of its machines' state.
fn shard_worker(
    rx: Receiver<ShardMsg>,
    cfg: ServeConfig,
    predictor: Box<dyn PeakPredictor>,
    queue_depth: Arc<Gauge>,
) {
    // Views are boxed so the map stores a pointer, not the ~200-byte
    // struct: with fleet-scale machine counts every rehash of an inline
    // table rewrites hundreds of megabytes of fresh pages, which on slow
    // first-touch hosts costs more than the ingest work itself.
    let mut views: HashMap<MachineKey, Box<IncrementalView>> = HashMap::new();
    let mut metrics = ShardMetrics::default();
    // Handoff log: every successfully ingested sample, in arrival order
    // (per-machine order is what replay needs; a machine lives on exactly
    // one shard, so one flat vector suffices). Grows with total ingest —
    // only enabled for cluster runs that need member replacement.
    let mut handoff: Vec<HandoffEntry> = Vec::new();
    let log_handoff = cfg.handoff_log;
    let new_view = |cfg: &ServeConfig| {
        Box::new(
            IncrementalView::new(cfg.machine_capacity, &cfg.sim).with_max_gap(cfg.max_tick_gap),
        )
    };
    // Scalar samples take the scalar ingest path (bit-identical to the
    // pre-vector server); a `cpu,mem` pair routes through `ingest_vec`,
    // which flips the view into vector mode for good.
    let ingest = |view: &mut IncrementalView,
                  tick: Tick,
                  task: TaskId,
                  limit: f64,
                  usage: f64,
                  mem: Option<(f64, f64)>| match mem {
        None => view.ingest(tick, task, limit, usage),
        Some((mu, ml)) => view.ingest_vec(
            tick,
            task,
            Res2::from_lanes([limit, ml]),
            Res2::from_lanes([usage, mu]),
        ),
    };
    while let Ok(msg) = rx.recv() {
        queue_depth.dec();
        match msg {
            ShardMsg::Observe {
                key,
                task,
                usage,
                limit,
                mem,
                tick,
                enqueued,
            } => {
                let view = views.entry(key.clone()).or_insert_with(|| new_view(&cfg));
                match ingest(view, tick, task, limit, usage, mem) {
                    Ok(()) => {
                        metrics.observes += 1;
                        if log_handoff {
                            handoff.push(HandoffEntry {
                                key,
                                task,
                                usage,
                                limit,
                                mem,
                                tick,
                            });
                        }
                    }
                    Err(CoreError::StaleSample { .. }) => metrics.stale += 1,
                    Err(_) => metrics.errors += 1,
                }
                metrics.record_latency(enqueued.elapsed());
            }
            ShardMsg::ObserveBatch(chunk) => {
                // One latency sample per item, not per chunk, so the
                // `latency_us.count == observes+stale+errors+…` identity
                // holds whether or not samples were coalesced.
                let elapsed = chunk.enqueued.elapsed();
                let items = &chunk.items[..chunk.len];
                let mut i = 0;
                while i < items.len() {
                    // One map lookup per run of same-machine samples: a
                    // fan-in connection fills whole chunks from a single
                    // machine, and the per-item key hash would otherwise
                    // dominate the ingest loop.
                    let key = &items[i].key;
                    let view = views.entry(key.clone()).or_insert_with(|| new_view(&cfg));
                    let run_start = i;
                    while i < items.len() && items[i].key == *key {
                        let item = &items[i];
                        match ingest(view, item.tick, item.task, item.limit, item.usage, item.mem) {
                            Ok(()) => {
                                metrics.observes += 1;
                                if log_handoff {
                                    handoff.push(HandoffEntry {
                                        key: item.key.clone(),
                                        task: item.task,
                                        usage: item.usage,
                                        limit: item.limit,
                                        mem: item.mem,
                                        tick: item.tick,
                                    });
                                }
                            }
                            Err(CoreError::StaleSample { .. }) => metrics.stale += 1,
                            Err(_) => metrics.errors += 1,
                        }
                        i += 1;
                    }
                    metrics.record_latency_n(elapsed, (i - run_start) as u64);
                }
            }
            ShardMsg::Predict {
                key,
                vector,
                reply,
                enqueued,
            } => {
                metrics.predicts += 1;
                let resp = match views.get_mut(&key) {
                    Some(view) => {
                        view.flush();
                        if vector {
                            let v = view.view();
                            let cpu = clamp_prediction_lane(predictor.predict_lane(v, CPU), v, CPU);
                            let mem = clamp_prediction_lane(predictor.predict_lane(v, MEM), v, MEM);
                            Response::Pred {
                                peak: cpu,
                                mem: Some(mem),
                            }
                        } else {
                            let peak =
                                clamp_prediction(predictor.predict(view.view()), view.view());
                            Response::Pred { peak, mem: None }
                        }
                    }
                    None => {
                        metrics.errors += 1;
                        Response::Err {
                            code: ErrCode::UnknownMachine,
                            detail: format!("{}/{} never observed", key.0, key.1),
                        }
                    }
                };
                let _ = reply.send(resp);
                metrics.record_latency(enqueued.elapsed());
            }
            ShardMsg::Admit {
                key,
                limit,
                reply,
                enqueued,
            } => {
                metrics.admits += 1;
                // An admission check on a never-observed machine is legal:
                // the scheduler probes idle machines too. State is created
                // on demand, exactly as a first OBSERVE would.
                let view = views.entry(key).or_insert_with(|| new_view(&cfg));
                view.flush();
                let peak = clamp_prediction(predictor.predict(view.view()), view.view());
                let projected = peak + limit;
                let resp = Response::Admitted {
                    admit: projected <= view.view().capacity(),
                    projected,
                };
                let _ = reply.send(resp);
                metrics.record_latency(enqueued.elapsed());
            }
            ShardMsg::Snapshot { reply } => {
                let mut m = metrics.clone();
                m.machines = views.len() as u64;
                let _ = reply.send(m);
            }
            ShardMsg::Handoff { reply } => {
                // A copy, not a drain: the log keeps serving future
                // replacements (and the member keeps appending).
                let _ = reply.send(handoff.clone());
            }
            ShardMsg::Shutdown { reply } => {
                let mut m = metrics.clone();
                m.machines = views.len() as u64;
                let _ = reply.send(m);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::ids::JobId;

    fn key(m: u32) -> MachineKey {
        (CellId::new("t"), MachineId(m))
    }

    fn observe(m: u32, tick: u64, usage: f64) -> ShardMsg {
        ShardMsg::Observe {
            key: key(m),
            task: TaskId::new(JobId(1), 0),
            usage,
            limit: 0.5,
            mem: None,
            tick: Tick(tick),
            enqueued: Instant::now(),
        }
    }

    fn pool(shards: usize, depth: usize) -> ShardPool {
        ShardPool::new(
            &ServeConfig::default()
                .with_shards(shards)
                .with_queue_depth(depth),
            &MetricsRegistry::new(),
        )
        .unwrap()
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let p = pool(4, 16);
        for m in 0..100 {
            let s = p.route(&key(m));
            assert!(s < 4);
            assert_eq!(s, p.route(&key(m)));
        }
        p.shutdown();
    }

    #[test]
    fn observe_then_predict_round_trip() {
        let p = pool(1, 64);
        for t in 0..30u64 {
            p.try_send(0, observe(1, t, 0.2)).unwrap();
        }
        let (reply, rx) = sync_channel(1);
        p.try_send(
            0,
            ShardMsg::Predict {
                key: key(1),
                vector: false,
                reply,
                enqueued: Instant::now(),
            },
        )
        .unwrap();
        let resp = rx.recv().unwrap();
        let Response::Pred { peak, .. } = resp else {
            panic!("expected PRED, got {resp:?}");
        };
        assert!(peak > 0.0 && peak <= 0.5, "{peak}");
        let m = p.shutdown();
        assert_eq!(m.observes, 30);
        assert_eq!(m.predicts, 1);
        assert_eq!(m.machines, 1);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let p = pool(1, 2);
        // Block the worker: a Predict whose reply goes to a rendezvous
        // channel stalls in reply.send() until we receive — deterministic,
        // no sleeps.
        p.try_send(0, observe(1, 0, 0.2)).unwrap();
        let (reply, rx) = sync_channel::<Response>(0);
        p.send(
            0,
            ShardMsg::Predict {
                key: key(1),
                vector: false,
                reply,
                enqueued: Instant::now(),
            },
        )
        .unwrap();
        // The worker is (or will shortly be) parked in reply.send on the
        // rendezvous channel; keep filling the bounded queue until the
        // depth-2 bound trips. This terminates: at most `depth` sends
        // succeed after the worker parks.
        let mut busy = false;
        for t in 1..10_000u64 {
            match p.try_send(0, observe(1, t, 0.2)) {
                Ok(()) => {}
                Err(SendFail::Busy) => {
                    busy = true;
                    break;
                }
                Err(SendFail::Closed) => panic!("worker died"),
            }
        }
        assert!(busy, "bounded queue never reported Busy");
        // Release the worker and drain.
        let resp = rx.recv().unwrap();
        assert!(matches!(resp, Response::Pred { .. }));
        p.shutdown();
    }

    #[test]
    fn predict_unknown_machine_is_typed_error() {
        let p = pool(2, 8);
        let k = key(9);
        let shard = p.route(&k);
        let (reply, rx) = sync_channel(1);
        p.try_send(
            shard,
            ShardMsg::Predict {
                key: k,
                vector: false,
                reply,
                enqueued: Instant::now(),
            },
        )
        .unwrap();
        assert!(matches!(
            rx.recv().unwrap(),
            Response::Err {
                code: ErrCode::UnknownMachine,
                ..
            }
        ));
        p.shutdown();
    }

    #[test]
    fn admit_on_empty_machine_accepts_within_capacity() {
        let p = pool(1, 8);
        let (reply, rx) = sync_channel(1);
        p.try_send(
            0,
            ShardMsg::Admit {
                key: key(3),
                limit: 0.4,
                reply,
                enqueued: Instant::now(),
            },
        )
        .unwrap();
        let Response::Admitted { admit, projected } = rx.recv().unwrap() else {
            panic!("expected ADMITTED");
        };
        assert!(admit);
        assert_eq!(projected, 0.4);
        let (reply, rx) = sync_channel(1);
        p.try_send(
            0,
            ShardMsg::Admit {
                key: key(3),
                limit: 1.5,
                reply,
                enqueued: Instant::now(),
            },
        )
        .unwrap();
        let Response::Admitted { admit, .. } = rx.recv().unwrap() else {
            panic!("expected ADMITTED");
        };
        assert!(!admit, "1.5 exceeds capacity 1.0");
        p.shutdown();
    }

    #[test]
    fn queue_depth_gauge_balances_to_zero_after_drain() {
        let registry = MetricsRegistry::new();
        let p = ShardPool::new(
            &ServeConfig::default().with_shards(2).with_queue_depth(1024),
            &registry,
        )
        .unwrap();
        for t in 0..100u64 {
            let k = key((t % 7) as u32);
            let shard = p.route(&k);
            p.try_send(shard, observe((t % 7) as u32, t / 7, 0.2))
                .unwrap();
        }
        p.shutdown();
        let snap = registry.snapshot();
        for i in 0..2 {
            assert_eq!(
                snap.gauge(&format!("serve.shard.queue_depth.{i}")),
                Some(0),
                "every enqueue must be matched by a dequeue"
            );
        }
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let p = pool(1, 1024);
        for t in 0..500u64 {
            p.try_send(0, observe(1, t, 0.2)).unwrap();
        }
        let m = p.shutdown();
        assert_eq!(m.observes, 500, "shutdown must drain, not drop");
    }

    #[test]
    fn handoff_log_keeps_ingested_samples_in_order_and_skips_rejects() {
        let p = ShardPool::new(
            &ServeConfig::default()
                .with_shards(1)
                .with_queue_depth(64)
                .with_handoff_log(true),
            &MetricsRegistry::new(),
        )
        .unwrap();
        p.try_send(0, observe(1, 5, 0.2)).unwrap();
        p.try_send(0, observe(1, 6, 0.3)).unwrap();
        p.try_send(0, observe(1, 5, 0.2)).unwrap(); // stale: not logged
        p.try_send(0, observe(2, 1, 0.1)).unwrap();
        let (reply, rx) = sync_channel(1);
        p.send(0, ShardMsg::Handoff { reply }).unwrap();
        let log = rx.recv().unwrap();
        assert_eq!(log.len(), 3, "only successful ingests are logged");
        assert_eq!(
            log.iter()
                .map(|e| (e.key.1 .0, e.tick.0))
                .collect::<Vec<_>>(),
            vec![(1, 5), (1, 6), (2, 1)],
            "arrival order preserved"
        );
        // Disabled log answers empty, not an error at this layer (the
        // frontend turns it into ERR internal before asking).
        let p2 = pool(1, 8);
        p2.try_send(0, observe(1, 0, 0.2)).unwrap();
        let (reply, rx) = sync_channel(1);
        p2.send(0, ShardMsg::Handoff { reply }).unwrap();
        assert!(rx.recv().unwrap().is_empty());
        p.shutdown();
        p2.shutdown();
    }

    #[test]
    fn stale_samples_count_without_killing_the_shard() {
        let p = pool(1, 64);
        p.try_send(0, observe(1, 5, 0.2)).unwrap();
        p.try_send(0, observe(1, 6, 0.2)).unwrap();
        p.try_send(0, observe(1, 5, 0.2)).unwrap(); // stale
        p.try_send(0, observe(1, 7, 0.2)).unwrap();
        let m = p.shutdown();
        assert_eq!(m.observes, 3);
        assert_eq!(m.stale, 1);
    }
}
