//! Error type for the serving layer.

use std::fmt;

/// Errors produced when configuring or running the service.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration value was outside its valid domain.
    Config(String),
    /// A core (simulator/predictor) error.
    Core(oc_core::CoreError),
    /// A trace-generation error (load generator).
    Trace(oc_trace::TraceError),
    /// A socket or filesystem error.
    Io(std::io::Error),
    /// The wire protocol rejected a line (client-side parsing).
    Proto(crate::proto::ProtoError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(what) => write!(f, "invalid serve config: {what}"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
            ServeError::Trace(e) => write!(f, "trace error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Trace(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Proto(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<oc_core::CoreError> for ServeError {
    fn from(e: oc_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<oc_trace::TraceError> for ServeError {
    fn from(e: oc_trace::TraceError) -> Self {
        ServeError::Trace(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<crate::proto::ProtoError> for ServeError {
    fn from(e: crate::proto::ProtoError) -> Self {
        ServeError::Proto(e)
    }
}
