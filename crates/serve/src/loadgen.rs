//! Load-generator harness for `oc-serve`.
//!
//! Replays a [`WorkloadGenerator`] cell against a running server: every
//! per-task usage sample of every machine becomes one `OBSERVE` line, and
//! each machine gets one `PREDICT` per tick. Machines are pinned to
//! connections round-robin so per-machine sample order survives the trip
//! (the server only guarantees ordering within a connection).
//!
//! Each connection runs a writer and a reader thread; requests are
//! pipelined (the writer does not wait for responses), which is what lets
//! a line protocol over loopback reach hundreds of thousands of ops/s.
//! Latency is measured per request from write to matching response — with
//! pipelining this includes queueing time, so percentiles degrade visibly
//! as the offered rate approaches capacity.
//!
//! Pacing: `target_qps > 0` meters the *aggregate* request rate across
//! connections by slicing time into small batches; `target_qps == 0` means
//! open throttle (as fast as the socket accepts), the mode used to
//! provoke `BUSY` rejections for the overload phase of the benchmark.

use crate::error::ServeError;
use crate::proto::{Request, Response, StatsSnapshot};
use oc_stats::percentile_slice;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::ids::CellId;
use oc_trace::time::Tick;
use oc_trace::WorkloadGenerator;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-generator settings.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Cell preset replayed (defines machine count, task mix, seed).
    pub preset: CellPreset,
    /// Machines replayed from the cell (capped at the cell size).
    pub machines: usize,
    /// Ticks replayed per machine.
    pub ticks: u64,
    /// Generator seed override; `None` keeps the preset's seed.
    pub seed: Option<u64>,
    /// Client connections; machines are pinned round-robin.
    pub connections: usize,
    /// Aggregate target request rate; `0` = unpaced (open throttle).
    pub target_qps: u64,
    /// Issue one `PREDICT` per machine per tick alongside the samples.
    pub predicts: bool,
}

impl Default for LoadgenConfig {
    /// Cell preset A, 64 machines, one day of ticks, 4 connections,
    /// unpaced, with per-tick predictions.
    fn default() -> Self {
        LoadgenConfig {
            preset: CellPreset::A,
            machines: 64,
            ticks: oc_trace::TICKS_PER_DAY,
            seed: None,
            connections: 4,
            target_qps: 0,
            predicts: true,
        }
    }
}

/// What one [`run`] measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (OBSERVE + PREDICT).
    pub sent: u64,
    /// `OK`/`PRED` responses.
    pub ok: u64,
    /// `BUSY` rejections.
    pub busy: u64,
    /// `ERR` responses.
    pub errors: u64,
    /// Wall-clock duration of the replay, seconds.
    pub wall_secs: f64,
    /// Achieved request throughput (sent / wall), requests per second.
    pub achieved_qps: f64,
    /// Client-observed p50 latency, microseconds.
    pub p50_us: f64,
    /// Client-observed p99 latency, microseconds.
    pub p99_us: f64,
    /// Client-observed maximum latency, microseconds.
    pub max_us: f64,
    /// Server-side snapshot taken right after the replay.
    pub server: StatsSnapshot,
}

impl LoadReport {
    /// Reject rate: `busy / sent` (0 when nothing was sent).
    pub fn reject_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.busy as f64 / self.sent as f64
        }
    }

    /// Serializes the report as a JSON object (hand-rolled; the workspace
    /// vendors no serde).
    pub fn to_json(&self, label: &str) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"sent\":{},\"ok\":{},\"busy\":{},",
                "\"errors\":{},\"wall_secs\":{:.6},\"achieved_qps\":{:.1},",
                "\"reject_rate\":{:.6},\"client_p50_us\":{:.1},",
                "\"client_p99_us\":{:.1},\"client_max_us\":{:.1},",
                "\"server_p50_us\":{:.1},\"server_p99_us\":{:.1},",
                "\"server_mean_us\":{:.1},\"server_observes\":{},",
                "\"server_machines\":{}}}"
            ),
            label,
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            self.wall_secs,
            self.achieved_qps,
            self.reject_rate(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.server.p50_us,
            self.server.p99_us,
            self.server.mean_us,
            self.server.observes,
            self.server.machines,
        )
    }
}

/// One connection's scripted request lines, in send order.
#[derive(Debug)]
struct ConnPlan {
    lines: Vec<String>,
}

/// Builds per-connection request scripts from the generated cell.
///
/// Request order per machine is tick-major and, within a tick, trace task
/// order — the same order `simulate_machine` feeds its `MachineView`.
fn build_plans(cfg: &LoadgenConfig) -> Result<Vec<ConnPlan>, ServeError> {
    let mut cell_cfg: CellConfig = CellConfig::preset(cfg.preset);
    if let Some(seed) = cfg.seed {
        cell_cfg = cell_cfg.with_seed(seed);
    }
    let generator = WorkloadGenerator::new(cell_cfg)?;
    let cell = CellId::new(format!("{:?}", cfg.preset).to_lowercase());
    let n_machines = cfg.machines.min(generator.config().machines).max(1);
    let connections = cfg.connections.clamp(1, n_machines);
    let mut plans: Vec<ConnPlan> = (0..connections)
        .map(|_| ConnPlan { lines: Vec::new() })
        .collect();
    let metric = oc_core::config::SimConfig::default().metric;
    for m in 0..n_machines {
        let trace = generator.generate_machine(oc_trace::MachineId(m as u32))?;
        let plan = &mut plans[m % connections];
        let end = trace.horizon.start.0 + cfg.ticks.min(trace.horizon.len());
        for t in trace.horizon.start.0..end {
            let tick = Tick(t);
            for task in trace.tasks_at(tick) {
                let usage = task.sample_at(tick).map(|s| metric.of(s)).unwrap_or(0.0);
                let req = Request::Observe {
                    cell: cell.clone(),
                    machine: trace.machine,
                    task: task.spec.id,
                    usage,
                    limit: task.spec.limit,
                    tick: t,
                };
                plan.lines.push(req.encode());
            }
            if cfg.predicts {
                let req = Request::Predict {
                    cell: cell.clone(),
                    machine: trace.machine,
                };
                plan.lines.push(req.encode());
            }
        }
    }
    Ok(plans)
}

/// Outcome counts plus raw latencies from one connection.
#[derive(Debug, Default)]
struct ConnResult {
    sent: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

/// Replays one connection's script, pipelined.
///
/// The reader thread drains responses and matches them FIFO against the
/// send timestamps (the protocol answers strictly in order). `pace` is the
/// per-connection request interval; `Duration::ZERO` means unpaced.
fn run_conn(addr: SocketAddr, plan: ConnPlan, pace: Duration) -> Result<ConnResult, ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let total = plan.lines.len();
    let (ts_tx, ts_rx) = std::sync::mpsc::sync_channel::<Instant>(64 * 1024);

    let reader = std::thread::Builder::new()
        .name("loadgen-read".to_string())
        .spawn(move || -> Result<ConnResult, ServeError> {
            let mut r = BufReader::new(reader_stream);
            let mut res = ConnResult::default();
            res.latencies_us.reserve(total);
            let mut line = String::new();
            for _ in 0..total {
                line.clear();
                if r.read_line(&mut line)? == 0 {
                    break;
                }
                let sent_at = ts_rx.recv().expect("writer sends one stamp per line");
                res.latencies_us
                    .push(sent_at.elapsed().as_secs_f64() * 1e6);
                match Response::parse(line.trim_end())? {
                    Response::Busy => res.busy += 1,
                    Response::Err { .. } => res.errors += 1,
                    _ => res.ok += 1,
                }
            }
            Ok(res)
        })?;

    let mut w = BufWriter::new(stream);
    let start = Instant::now();
    let mut sent = 0u64;
    // Pace in batches of 64: per-request sleeps can't hit 100k+ QPS, and
    // coarse batches keep the meter honest without melting the clock.
    const BATCH: u64 = 64;
    for line in &plan.lines {
        if !pace.is_zero() && sent.is_multiple_of(BATCH) {
            let due = start + pace * (sent as u32);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            w.flush()?;
        }
        ts_tx.send(Instant::now()).expect("reader outlives writer");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        sent += 1;
    }
    w.flush()?;
    drop(ts_tx);
    let mut res = reader.join().expect("reader thread panicked")?;
    res.sent = sent;
    Ok(res)
}

/// Replays the configured cell against `addr` and gathers a report.
///
/// # Errors
///
/// Propagates socket errors, generator errors, and malformed responses.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> Result<LoadReport, ServeError> {
    let plans = build_plans(cfg)?;
    let n_conns = plans.len();
    let pace = if cfg.target_qps == 0 {
        Duration::ZERO
    } else {
        // Aggregate QPS split evenly across connections.
        Duration::from_secs_f64(n_conns as f64 / cfg.target_qps as f64)
    };
    let start = Instant::now();
    let mut joins = Vec::with_capacity(n_conns);
    for plan in plans {
        joins.push(
            std::thread::Builder::new()
                .name("loadgen-conn".to_string())
                .spawn(move || run_conn(addr, plan, pace))?,
        );
    }
    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut busy = 0u64;
    let mut errors = 0u64;
    let mut lats: Vec<f64> = Vec::new();
    for j in joins {
        let res = j.join().expect("connection thread panicked")?;
        sent += res.sent;
        ok += res.ok;
        busy += res.busy;
        errors += res.errors;
        lats.extend(res.latencies_us);
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let server = fetch_stats(addr)?;
    let q = |p: f64| percentile_slice(&lats, p).unwrap_or(0.0);
    Ok(LoadReport {
        sent,
        ok,
        busy,
        errors,
        wall_secs,
        achieved_qps: if wall_secs > 0.0 {
            sent as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: q(50.0),
        p99_us: q(99.0),
        max_us: lats.iter().cloned().fold(0.0, f64::max),
        server,
    })
}

/// Asks a running server for its `STATS` snapshot.
///
/// # Errors
///
/// Propagates socket errors; a non-`STATS` reply is a protocol error.
pub fn fetch_stats(addr: SocketAddr) -> Result<StatsSnapshot, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"STATS\n")?;
    let mut r = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    r.read_line(&mut line)?;
    match Response::parse(line.trim_end())? {
        Response::Stats(s) => Ok(s),
        other => Err(ServeError::Config(format!(
            "expected STATS reply, got {other:?}"
        ))),
    }
}

/// Sends `SHUTDOWN` to a running server (fire-and-forget).
///
/// # Errors
///
/// Propagates socket errors.
pub fn request_shutdown(addr: SocketAddr) -> Result<(), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"SHUTDOWN\n")?;
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    let _ = r.read_line(&mut line);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::server::Server;

    #[test]
    fn small_replay_round_trips() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let cfg = LoadgenConfig {
            machines: 4,
            ticks: 16,
            connections: 2,
            predicts: true,
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert!(report.sent > 0);
        assert_eq!(report.busy, 0, "default queues must absorb a tiny replay");
        assert_eq!(report.errors, 0);
        assert_eq!(report.ok, report.sent);
        assert!(report.server.observes > 0);
        assert_eq!(report.server.machines, 4);
        // 4 machines x 16 ticks of predictions.
        assert_eq!(report.server.predicts, 64);
        server.shutdown();
    }

    #[test]
    fn paced_replay_respects_target() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let cfg = LoadgenConfig {
            machines: 1,
            ticks: 8,
            connections: 1,
            target_qps: 2_000,
            predicts: false,
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        // Unambitious bound: pacing must not *exceed* the target by 5x
        // (it may undershoot on a loaded CI box).
        assert!(
            report.achieved_qps < 10_000.0,
            "pacing ignored: {} qps",
            report.achieved_qps
        );
        server.shutdown();
    }
}
