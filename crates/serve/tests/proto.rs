//! Property tests for the wire protocol: `parse(encode(x)) == x` for every
//! request and response, and malformed input always yields a typed
//! [`ProtoError`] — never a panic.

use oc_serve::proto::{
    encode_batch_into, encode_batchr_header_into, parse_batch_header, parse_batchr_header,
    push_f64, push_u64, ErrCode, ProtoError, ProtoScratch, Request, Response, StatsSnapshot,
    MAX_BATCH, MAX_LINE_BYTES,
};
use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
use proptest::prelude::*;

/// Cell names exercised on the wire: plain, dashed, underscored, long.
const CELLS: [&str; 4] = ["a", "cell-b", "prod_c", "x123456789"];

/// Builds a request from flat sampled scalars (the vendored proptest has no
/// `prop_oneof`/`prop_map`, so variants are chosen by a selector integer).
#[allow(clippy::too_many_arguments)] // one flat scalar per proptest strategy
fn make_request(
    selector: u32,
    cell_idx: usize,
    machine: u32,
    job: u64,
    index: u32,
    usage: f64,
    limit: f64,
    tick: u64,
) -> Request {
    let cell = CellId::new(CELLS[cell_idx % CELLS.len()]);
    let machine = MachineId(machine);
    match selector % 7 {
        0 => Request::Observe {
            cell,
            machine,
            task: TaskId::new(JobId(job), index),
            usage,
            limit,
            mem: None,
            tick,
        },
        1 => Request::Predict {
            cell,
            machine,
            vector: false,
        },
        2 => Request::Admit {
            cell,
            machine,
            limit,
        },
        // Multi-resource forms: OBSERVE with a `cpu,mem` pair in both the
        // usage and limit slots, PREDICT with the trailing `*`.
        3 => Request::Observe {
            cell,
            machine,
            task: TaskId::new(JobId(job), index),
            usage,
            limit,
            // Reuse the float strategies crosswise so the memory lane
            // exercises the same value space as the CPU lane.
            mem: Some((limit, usage)),
            tick,
        },
        4 => Request::Predict {
            cell,
            machine,
            vector: true,
        },
        5 => Request::Stats,
        _ => Request::Shutdown,
    }
}

proptest! {
    /// Round trip: every encodable request parses back to itself, bit-exact
    /// floats included.
    #[test]
    fn request_round_trips(
        selector in 0u32..7,
        cell_idx in 0usize..4,
        machine in 0u32..=u32::MAX,
        job in 0u64..=u64::MAX,
        index in 0u32..=u32::MAX,
        usage in 0.0f64..1e12,
        limit in 0.0f64..1e12,
        tick in 0u64..=u64::MAX,
    ) {
        let req = make_request(selector, cell_idx, machine, job, index, usage, limit, tick);
        let line = req.encode();
        prop_assert!(line.len() <= MAX_LINE_BYTES, "encoded line too long: {line}");
        let back = Request::parse(&line);
        prop_assert_eq!(back, Ok(req));
    }

    /// Round trip for responses, including the 15-field STATS snapshot.
    #[test]
    fn response_round_trips(
        selector in 0u32..7,
        flag in 0u32..2,
        peak in 0.0f64..1e9,
        counters in proptest::collection::vec(0u64..=u64::MAX, 11),
        lats in proptest::collection::vec(0.0f64..1e7, 4),
        code_idx in 0u32..9,
    ) {
        let code = [
            ErrCode::Parse,
            ErrCode::Stale,
            ErrCode::Gap,
            ErrCode::UnknownMachine,
            ErrCode::Shutdown,
            ErrCode::Internal,
            ErrCode::Timeout,
            ErrCode::ConnLimit,
            ErrCode::NotMine,
        ][code_idx as usize];
        let resp = match selector % 7 {
            0 => Response::Ok,
            1 => Response::Busy,
            2 => Response::Pred { peak, mem: None },
            6 => Response::Pred { peak, mem: Some(lats[0]) },
            3 => Response::Admitted { admit: flag == 1, projected: peak },
            4 => Response::Stats(StatsSnapshot {
                observes: counters[0],
                predicts: counters[1],
                admits: counters[2],
                busy: counters[3],
                stale: counters[4],
                errors: counters[5],
                machines: counters[6],
                faults: counters[7],
                timeouts: counters[8],
                conn_rejects: counters[9],
                epoch: counters[10],
                p50_us: lats[0],
                p99_us: lats[1],
                mean_us: lats[2],
                max_us: lats[3],
            }),
            _ => Response::Err { code, detail: "some detail text".into() },
        };
        let back = Response::parse(&resp.encode());
        prop_assert_eq!(back, Ok(resp));
    }

    /// Float fields survive the wire bit-for-bit (shortest-round-trip
    /// formatting) — the property the serve-vs-offline smoke test rests on.
    #[test]
    fn floats_are_bit_exact_on_the_wire(mantissa in 0u64..=u64::MAX) {
        // Map arbitrary bits into a finite non-negative f64.
        let value = f64::from_bits(mantissa & !(1u64 << 63));
        if !value.is_finite() {
            return Ok(());
        }
        let resp = Response::Pred { peak: value, mem: None };
        let Ok(Response::Pred { peak, mem: None }) = Response::parse(&resp.encode()) else {
            return Err("PRED did not parse back".to_string());
        };
        prop_assert_eq!(peak.to_bits(), value.to_bits());
        // The pair form is bit-exact in both lanes.
        let half = f64::from_bits(value.to_bits() ^ 1); // a nearby distinct value
        let resp = Response::Pred { peak: value, mem: Some(half) };
        let Ok(Response::Pred { peak, mem: Some(mem) }) = Response::parse(&resp.encode()) else {
            return Err("PRED cpu,mem did not parse back".to_string());
        };
        prop_assert_eq!(peak.to_bits(), value.to_bits());
        prop_assert_eq!(mem.to_bits(), half.to_bits());
    }

    /// The multi-resource OBSERVE form round-trips with both lanes
    /// bit-exact, and a lane pair in only one of usage/limit is the typed
    /// lane-mismatch error — never a half-vector sample.
    #[test]
    fn vector_observe_round_trips_and_rejects_half_pairs(
        cell_idx in 0usize..4,
        machine in 0u32..=u32::MAX,
        usage in 0.0f64..1e12,
        limit in 0.0f64..1e12,
        mem_usage in 0.0f64..1e12,
        mem_limit in 0.0f64..1e12,
        tick in 0u64..=u64::MAX,
    ) {
        let req = Request::Observe {
            cell: CellId::new(CELLS[cell_idx % CELLS.len()]),
            machine: MachineId(machine),
            task: TaskId::new(JobId(3), 1),
            usage,
            limit,
            mem: Some((mem_usage, mem_limit)),
            tick,
        };
        let line = req.encode();
        prop_assert!(line.len() <= MAX_LINE_BYTES, "encoded line too long: {line}");
        let back = Request::parse(&line);
        prop_assert_eq!(back, Ok(req.clone()));
        if let Ok(Request::Observe { usage: u, limit: l, mem: Some((mu, ml)), .. })
            = Request::parse(&line)
        {
            prop_assert_eq!(u.to_bits(), usage.to_bits());
            prop_assert_eq!(l.to_bits(), limit.to_bits());
            prop_assert_eq!(mu.to_bits(), mem_usage.to_bits());
            prop_assert_eq!(ml.to_bits(), mem_limit.to_bits());
        }
        // Strip the pair from exactly one slot: LaneMismatch, both ways.
        let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
        for slot in [4usize, 5] {
            let mut mixed: Vec<String> = tokens.iter().map(|t| (*t).to_string()).collect();
            mixed[slot] = mixed[slot].split(',').next().unwrap().to_string();
            prop_assert_eq!(
                Request::parse(&mixed.join(" ")),
                Err(ProtoError::LaneMismatch),
                "slot {} scalar + other slot pair must be rejected", slot
            );
        }
    }

    /// Arbitrary byte soup never panics the parser: it either parses or
    /// returns a typed error.
    #[test]
    fn arbitrary_lines_never_panic(bytes in proptest::collection::vec(0u32..128, 0..80)) {
        let line: String = bytes
            .iter()
            .map(|&b| char::from_u32(b).unwrap_or('?'))
            .collect();
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
    }

    /// BATCH framing round-trips: the encoded frame's header announces
    /// the sub-request count and every sub-line parses back bit-exact.
    #[test]
    fn batch_frame_round_trips(
        n in 1usize..40,
        selector in 0u32..3, // data-plane verbs only
        cell_idx in 0usize..4,
        machine in 0u32..1_000_000,
        usage in 0.0f64..1e9,
        limit in 0.0f64..1e9,
        tick in 0u64..=u64::MAX,
    ) {
        let reqs: Vec<Request> = (0..n)
            .map(|i| make_request(
                selector,
                cell_idx,
                machine.wrapping_add(i as u32),
                i as u64,
                i as u32,
                usage,
                limit,
                tick.wrapping_add(i as u64),
            ))
            .collect();
        let mut frame = Vec::new();
        encode_batch_into(&reqs, &mut frame);
        let text = std::str::from_utf8(&frame).expect("frames are UTF-8");
        let mut lines = text.lines();
        let mut scratch = ProtoScratch::new();
        let header = lines.next().expect("frame has a header");
        prop_assert_eq!(parse_batch_header(header, &mut scratch), Ok(Some(n)));
        let mut parsed = 0usize;
        for (line, want) in lines.zip(&reqs) {
            prop_assert!(line.len() <= MAX_LINE_BYTES);
            prop_assert_eq!(Request::parse(line), Ok(want.clone()));
            parsed += 1;
        }
        prop_assert_eq!(parsed, n, "frame must carry exactly n sub-lines");
    }

    /// BATCHR headers round-trip through the header codec for every legal
    /// count, and the count cap is enforced on both header verbs.
    #[test]
    fn batchr_header_round_trips(n in 1usize..=MAX_BATCH) {
        let mut out = Vec::new();
        encode_batchr_header_into(n, &mut out);
        let line = std::str::from_utf8(&out).unwrap();
        let mut scratch = ProtoScratch::new();
        prop_assert_eq!(parse_batchr_header(line, &mut scratch), Ok(Some(n)));
        // A BATCHR header is not a BATCH header and vice versa.
        prop_assert_eq!(parse_batch_header(line, &mut scratch), Ok(None));
    }

    /// A BATCH header truncated mid-token, oversized, or with an
    /// out-of-range count is a typed error or a non-header — never a
    /// panic, never a bogus frame.
    #[test]
    fn batch_header_abuse_is_typed(count in 0u64..=u64::MAX, pad in 0usize..16) {
        let mut scratch = ProtoScratch::new();
        let line = format!("BATCH {count}");
        match parse_batch_header(&line, &mut scratch) {
            Ok(Some(n)) => {
                prop_assert!(n as u64 == count && (1..=MAX_BATCH as u64).contains(&count));
            }
            Err(ProtoError::BatchSize { got }) => prop_assert_eq!(got, count),
            other => return Err(format!("unexpected: {other:?}")),
        }
        // Truncation at the 512-byte cap: any header line longer than
        // MAX_LINE_BYTES is rejected before the count is even looked at.
        let long = format!("BATCH {}{}", "9".repeat(MAX_LINE_BYTES), " ".repeat(pad));
        prop_assert!(matches!(
            parse_batch_header(&long, &mut scratch),
            Err(ProtoError::LineTooLong { .. })
        ));
    }

    /// Manual float formatting is byte-identical to `format!("{v}")` for
    /// every finite input — the property the zero-allocation encoder's
    /// bit-exactness rests on.
    #[test]
    fn push_f64_matches_display(bits in 0u64..=u64::MAX) {
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            return Ok(());
        }
        let mut out = Vec::new();
        push_f64(&mut out, v);
        prop_assert_eq!(String::from_utf8(out).unwrap(), format!("{v}"));
    }

    /// Same for the integer formatter.
    #[test]
    fn push_u64_matches_display(v in 0u64..=u64::MAX) {
        let mut out = Vec::new();
        push_u64(&mut out, v);
        prop_assert_eq!(String::from_utf8(out).unwrap(), format!("{v}"));
    }

    /// Corrupting any one STATS field yields the typed [`ProtoError`]
    /// naming the expected key — never a silent default or a panic.
    #[test]
    fn corrupted_stats_fields_are_typed(victim in 0usize..15, mode in 0u32..2) {
        let snapshot = StatsSnapshot {
            observes: 1,
            predicts: 2,
            admits: 3,
            busy: 4,
            stale: 5,
            errors: 6,
            machines: 7,
            faults: 8,
            timeouts: 9,
            conn_rejects: 10,
            epoch: 11,
            p50_us: 1.5,
            p99_us: 9.5,
            mean_us: 2.25,
            max_us: 99.0,
        };
        let encoded = snapshot.encode_fields();
        let mut operands: Vec<String> =
            encoded.split_ascii_whitespace().map(str::to_string).collect();
        match mode {
            0 => operands[victim] = operands[victim].replace('=', ":"), // no '='
            _ => operands[victim] = format!("bogus{}", &operands[victim]), // wrong key
        }
        let refs: Vec<&str> = operands.iter().map(String::as_str).collect();
        match StatsSnapshot::parse_fields(&refs) {
            Err(ProtoError::StatsField { expected, got }) => {
                prop_assert_eq!(expected, encoded.split_ascii_whitespace()
                    .nth(victim).unwrap().split('=').next().unwrap());
                prop_assert_eq!(got, operands[victim].clone());
            }
            other => return Err(format!("expected StatsField, got {other:?}")),
        }
    }

    /// Truncating a valid OBSERVE line at any token boundary yields a typed
    /// arity (or empty) error, never a panic or a bogus parse.
    #[test]
    fn truncated_observe_is_typed_error(
        machine in 0u32..1000,
        tick in 0u64..1_000_000,
        cut in 0usize..6,
    ) {
        let full = Request::Observe {
            cell: CellId::new("a"),
            machine: MachineId(machine),
            task: TaskId::new(JobId(7), 0),
            usage: 0.25,
            limit: 0.5,
            mem: None,
            tick,
        }
        .encode();
        let tokens: Vec<&str> = full.split_ascii_whitespace().collect();
        let truncated = tokens[..=cut].join(" ");
        match Request::parse(&truncated) {
            Err(ProtoError::Arity { verb: "OBSERVE", expected: 6, got }) => {
                prop_assert_eq!(got, cut);
            }
            other => return Err(format!("expected arity error, got {other:?}")),
        }
    }
}

#[test]
fn malformed_numbers_are_typed_errors() {
    for (line, field) in [
        ("OBSERVE a 1 2:0 NaN 0.5 7", "usage"),
        ("OBSERVE a 1 2:0 inf 0.5 7", "usage"),
        ("OBSERVE a 1 2:0 0.5 -1 7", "limit"),
        ("ADMIT a 1 NaN", "limit"),
    ] {
        match Request::parse(line) {
            Err(ProtoError::OutOfDomain { field: f, .. }) => assert_eq!(f, field, "{line}"),
            other => panic!("{line}: expected OutOfDomain, got {other:?}"),
        }
    }
    assert!(matches!(
        Request::parse("OBSERVE a 1 2:0 zero 0.5 7"),
        Err(ProtoError::BadNumber { field: "usage", .. })
    ));
    assert!(matches!(
        Request::parse("OBSERVE a 99999999999 2:0 0.1 0.5 7"),
        Err(ProtoError::BadNumber {
            field: "machine",
            ..
        })
    ));
}

#[test]
fn unknown_verbs_and_junk_are_typed_errors() {
    assert!(matches!(
        Request::parse("FROBNICATE"),
        Err(ProtoError::UnknownVerb { .. })
    ));
    assert!(matches!(
        Request::parse("observe a 1 2:0 0.1 0.5 7"), // verbs are case-sensitive
        Err(ProtoError::UnknownVerb { .. })
    ));
    assert_eq!(Request::parse(""), Err(ProtoError::Empty));
    assert!(matches!(
        Request::parse(&"A".repeat(MAX_LINE_BYTES + 1)),
        Err(ProtoError::LineTooLong { .. })
    ));
    assert!(matches!(
        Request::parse("OBSERVE a 1 no-colon 0.1 0.5 7"),
        Err(ProtoError::BadTaskId { .. })
    ));
}

/// Satellite regression for the cluster-1m "mean 18x above p99" report:
/// merging member snapshots must keep the merged mean inside the merged
/// distribution's min/max (and at or below the merged p99, since every
/// member's own snapshot now holds mean <= p99 after the overflow-aware
/// quantile fix). The merge blends p50/p99/mean with the *same*
/// operation-count weights, so per-member orderings survive the fold.
#[test]
fn merged_stats_mean_stays_within_merged_min_max() {
    let member = |observes: u64, p50: f64, p99: f64, mean: f64, max: f64| StatsSnapshot {
        observes,
        p50_us: p50,
        p99_us: p99,
        mean_us: mean,
        max_us: max,
        ..StatsSnapshot::default()
    };
    // Shapes like a post-fix cluster-1m: heavy overflow tails, p99
    // substituted with the exact max, mean dominated by the tail.
    let a = member(700_000, 9_000.0, 410_000.0, 130_000.0, 410_000.0);
    let b = member(650_000, 11_000.0, 380_000.0, 125_000.0, 380_000.0);
    let c = member(680_000, 8_500.0, 500_000.0, 140_000.0, 500_000.0);
    let mut merged = a.clone();
    merged.merge(&b);
    merged.merge(&c);
    assert!(
        merged.mean_us >= merged.p50_us.min(a.p50_us.min(b.p50_us.min(c.p50_us))),
        "merged mean {} fell below every member's p50",
        merged.mean_us
    );
    assert!(
        merged.mean_us <= merged.p99_us,
        "merged mean {} above merged p99 {} — the pre-fix impossibility",
        merged.mean_us,
        merged.p99_us
    );
    assert!(
        merged.mean_us <= merged.max_us,
        "merged mean {} above merged max {}",
        merged.mean_us,
        merged.max_us
    );
    assert_eq!(merged.max_us, 500_000.0, "max of maxes is exact");
}
