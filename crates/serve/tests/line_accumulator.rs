//! Property tests for the per-connection read state machine
//! ([`LineAccumulator`]): however the transport segments the byte
//! stream, complete lines come out byte-identical, a truncated final
//! line is never delivered, and an unterminated over-long accumulation
//! is reported instead of buffered without bound.
//!
//! These invariants are what make the reactor frontend's arbitrary
//! wakeup boundaries safe: an epoll read can end anywhere — mid-line,
//! mid-frame, one byte at a time — and the protocol layer above must
//! never notice.

use oc_serve::conn::{Feed, LineAccumulator};
use oc_serve::proto::MAX_LINE_BYTES;
use proptest::prelude::*;

/// Joins generated line bodies into a wire payload: every body gets its
/// terminator, then `partial` trails with none. Bodies arrive as `u32`
/// (the vendored proptest only generates the wider int types); each
/// value is truncated to a byte and `\n` is remapped so each body stays
/// exactly one line.
fn build_payload(lines: &[Vec<u32>], partial: &[u32]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let as_byte = |v: u32| match v as u8 {
        b'\n' => b' ',
        b => b,
    };
    let mut payload = Vec::new();
    let mut expected = Vec::new();
    for body in lines {
        let mut line: Vec<u8> = body.iter().map(|&v| as_byte(v)).collect();
        line.push(b'\n');
        payload.extend_from_slice(&line);
        expected.push(line);
    }
    payload.extend(partial.iter().map(|&v| as_byte(v)));
    (payload, expected)
}

/// Splits `payload` at pseudo-arbitrary boundaries derived from `cuts`.
fn split_chunks<'a>(payload: &'a [u8], cuts: &[u64]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut rest = payload;
    for &c in cuts {
        if rest.is_empty() {
            break;
        }
        // +1 keeps progress; modulo keeps the cut in range.
        let at = (c as usize % rest.len()) + 1;
        let (head, tail) = rest.split_at(at.min(rest.len()));
        chunks.push(head);
        rest = tail;
    }
    if !rest.is_empty() {
        chunks.push(rest);
    }
    chunks
}

proptest! {
    /// Complete lines are delivered byte-identically no matter where the
    /// chunk boundaries fall, and the trailing partial is retained (not
    /// delivered) with its exact length.
    #[test]
    fn lines_survive_arbitrary_split_boundaries(
        lines in proptest::collection::vec(
            proptest::collection::vec(0u32..=255, 0..60), 0..8),
        partial in proptest::collection::vec(0u32..=255, 0..60),
        cuts in proptest::collection::vec(0u64..=u64::MAX, 0..24),
    ) {
        let (payload, expected) = build_payload(&lines, &partial);
        let mut acc = LineAccumulator::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for chunk in split_chunks(&payload, &cuts) {
            let fed = acc.feed(chunk, |line| {
                got.push(line.to_vec());
                Ok(true)
            }).expect("callback never errors");
            prop_assert_eq!(fed, Feed::More, "all lines fit under the cap");
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(acc.partial_len(), partial.len());
        // EOF contract: the truncated tail is discarded, never delivered.
        prop_assert_eq!(acc.discard_partial(), partial.len());
        prop_assert_eq!(acc.partial_len(), 0);
        prop_assert_eq!(&got, &expected, "discard delivered nothing");
    }

    /// An unterminated accumulation past `MAX_LINE_BYTES` reports
    /// `Oversize` (with the buffer reset) instead of growing without
    /// bound — however the oversize run was segmented.
    #[test]
    fn unterminated_overlong_line_reports_oversize(
        extra in 0usize..300,
        cuts in proptest::collection::vec(0u64..=u64::MAX, 0..16),
    ) {
        let payload = vec![b'x'; MAX_LINE_BYTES + 1 + extra];
        let mut acc = LineAccumulator::new();
        let mut delivered = 0usize;
        let mut oversize = false;
        for chunk in split_chunks(&payload, &cuts) {
            match acc.feed(chunk, |_| { delivered += 1; Ok(true) }).unwrap() {
                Feed::More => {}
                Feed::Oversize => { oversize = true; break; }
                Feed::Close => unreachable!("callback never closes"),
            }
        }
        prop_assert!(oversize, "cap never tripped");
        prop_assert_eq!(delivered, 0, "no newline ever arrived");
        prop_assert_eq!(acc.partial_len(), 0, "oversize resets the buffer");
    }

    /// A *terminated* line of any length is delivered exactly once —
    /// the newline proves the stream is in sync, so an over-long line is
    /// the parser's problem (recoverable `ERR parse`), not the
    /// accumulator's.
    #[test]
    fn terminated_line_is_always_delivered(
        len in 0usize..(MAX_LINE_BYTES + 200),
        cuts in proptest::collection::vec(0u64..=u64::MAX, 0..16),
    ) {
        let mut payload = vec![b'y'; len];
        payload.push(b'\n');
        let mut acc = LineAccumulator::new();
        let mut got: Vec<usize> = Vec::new();
        for chunk in split_chunks(&payload, &cuts) {
            // Oversize fires only if the cap is exceeded *before* the
            // terminator arrives in a later chunk; with the terminator
            // in the payload that can only happen when a cut strands
            // > MAX_LINE_BYTES unterminated — rule it out by checking.
            let fed = acc.feed(chunk, |line| { got.push(line.len()); Ok(true) }).unwrap();
            if len <= MAX_LINE_BYTES {
                prop_assert_eq!(fed, Feed::More);
            } else if fed == Feed::Oversize {
                // Legitimately tripped mid-stream; nothing delivered.
                prop_assert_eq!(got.len(), 0);
                return Ok(());
            }
        }
        prop_assert_eq!(got.as_slice(), &[len + 1][..], "one line, terminator included");
    }

    /// `Ok(false)` from the handler closes: the line that asked to close
    /// is the last one delivered and the rest of the chunk is discarded.
    #[test]
    fn close_discards_the_rest_of_the_feed(
        n_lines in 1usize..8,
        close_at in 0usize..8,
    ) {
        let close_at = close_at % n_lines;
        let mut payload = Vec::new();
        for i in 0..n_lines {
            payload.extend_from_slice(format!("line {i}\n").as_bytes());
        }
        let mut acc = LineAccumulator::new();
        let mut seen = 0usize;
        let fed = acc.feed(&payload, |_| {
            let keep = seen != close_at;
            seen += 1;
            Ok(keep)
        }).unwrap();
        prop_assert_eq!(fed, Feed::Close);
        prop_assert_eq!(seen, close_at + 1, "delivery stops at the close");
    }
}
