//! The peak-predictor abstraction and config-driven construction.

use crate::error::CoreError;
use crate::view::MachineView;
use oc_stats::resource::{Res2, CPU, NUM_RESOURCES};

/// A machine-level peak predictor (Section 4 of the paper).
///
/// Implementations estimate, from node-agent state only, the machine's peak
/// total usage over the forecast horizon. They must be lightweight — they
/// run on every machine, inside the node agent, once per polling interval —
/// which is why every built-in predictor is O(tasks · window) or better.
///
/// Implementations should return a value in `[0, Σ limits]`; the framework
/// additionally clamps via [`clamp_prediction`] wherever it consumes raw
/// predictions, because a prediction above the sum of limits is never
/// actionable (usage is capped per-task at the limit) and a negative one is
/// meaningless.
pub trait PeakPredictor: Send + Sync {
    /// A short stable name for tables and CSV headers.
    fn name(&self) -> String;

    /// Predicts the machine's future peak CPU usage from its current view.
    fn predict(&self, view: &MachineView) -> f64;

    /// Predicts the machine's future peak usage in resource lane `lane`.
    ///
    /// Lane 0 (CPU) always routes through [`PeakPredictor::predict`], so
    /// the CPU lane of a vectorized caller is bit-identical to the scalar
    /// API. The default for other lanes is the conservative no-overcommit
    /// answer (that lane's Σ limits); the built-in usage-based predictors
    /// override it with the same formula they apply to CPU, evaluated on
    /// the lane's windows.
    ///
    /// # Examples
    ///
    /// ```
    /// use oc_core::config::SimConfig;
    /// use oc_core::predictor::{PeakPredictor, PredictorSpec};
    /// use oc_core::view::MachineView;
    /// use oc_stats::resource::{Res2, CPU, MEM};
    /// use oc_trace::ids::{JobId, TaskId};
    /// use oc_trace::time::Tick;
    ///
    /// let cfg = SimConfig::default();
    /// let mut view = MachineView::new(1.0, &cfg);
    /// let task = TaskId::new(JobId(1), 0);
    /// view.observe_vec(
    ///     Tick(0),
    ///     [(task, Res2::from_lanes([0.4, 0.2]), Res2::from_lanes([0.1, 0.08]))],
    /// );
    /// let p = PredictorSpec::paper_max().build().unwrap();
    /// // One cold task: every lane predicts that lane's limit sum.
    /// assert_eq!(p.predict_lane(&view, CPU), 0.4);
    /// assert_eq!(p.predict_lane(&view, MEM), 0.2);
    /// let v = p.predict_vec(&view);
    /// assert_eq!(v.lanes(), &[0.4, 0.2]);
    /// ```
    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        if lane == CPU {
            self.predict(view)
        } else {
            view.total_limit_lane(lane)
        }
    }

    /// Predicts every resource lane at once. Lane 0 equals
    /// [`PeakPredictor::predict`] bit-for-bit.
    fn predict_vec(&self, view: &MachineView) -> Res2 {
        Res2::from_lanes(std::array::from_fn(|lane| self.predict_lane(view, lane)))
    }
}

/// Clamps a raw CPU prediction into the actionable range `[0, Σ limits]`.
pub fn clamp_prediction(raw: f64, view: &MachineView) -> f64 {
    raw.clamp(0.0, view.total_limit())
}

/// Clamps a raw per-lane prediction into `[0, Σ limits]` of that lane.
pub fn clamp_prediction_lane(raw: f64, view: &MachineView, lane: usize) -> f64 {
    raw.clamp(0.0, view.total_limit_lane(lane))
}

/// Clamps a per-lane prediction vector into each lane's actionable range.
pub fn clamp_prediction_vec(raw: Res2, view: &MachineView) -> Res2 {
    Res2::from_lanes(std::array::from_fn::<_, NUM_RESOURCES, _>(|lane| {
        clamp_prediction_lane(raw.lane(lane), view, lane)
    }))
}

/// Declarative predictor description: buildable, comparable, printable.
///
/// Experiments are configured with specs rather than trait objects so
/// that parallel runners can cheaply re-instantiate predictors per thread
/// and reports can be labelled consistently.
///
/// # Examples
///
/// ```
/// use oc_core::predictor::PredictorSpec;
///
/// let spec = PredictorSpec::paper_max();
/// assert_eq!(spec.name(), "max(n-sigma(5),rc-like(p99))");
/// let predictor = spec.build().unwrap();
/// assert_eq!(predictor.name(), spec.name());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorSpec {
    /// Σ limits — the conservative no-overcommit baseline.
    LimitSum,
    /// `φ · Σ limits` — Borg's static default policy.
    BorgDefault {
        /// The static overcommit fraction (0.9 in the paper).
        phi: f64,
    },
    /// `Σ percᵏ(task usage)` — Resource-Central-style per-task percentiles.
    RcLike {
        /// The per-task percentile in `(0, 100]` (99 in simulation, 80 in
        /// the production deployment).
        percentile: f64,
    },
    /// `mean(U) + N·std(U)` over the machine-level aggregate usage.
    NSigma {
        /// The sigma multiplier (5 in simulation, 3 in production).
        n: f64,
    },
    /// Per-slot-of-day decayed peak profile (extension; see
    /// [`crate::predictors::Seasonal`]).
    Seasonal {
        /// Day slots (24 → hourly).
        slots: usize,
        /// Per-observation decay in `[0, 1)`.
        decay: f64,
        /// Forecast coverage in ticks.
        horizon_ticks: u64,
    },
    /// Pointwise maximum over a set of predictors.
    Max(
        /// The component predictor specs.
        Vec<PredictorSpec>,
    ),
}

impl PredictorSpec {
    /// The paper's simulation-tuned max predictor:
    /// `max(N-sigma(5), RC-like(p99))`.
    pub fn paper_max() -> PredictorSpec {
        PredictorSpec::Max(vec![
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::RcLike { percentile: 99.0 },
        ])
    }

    /// The production-deployed max predictor:
    /// `max(N-sigma(3), RC-like(p80))` (Section 6.1).
    pub fn production_max() -> PredictorSpec {
        PredictorSpec::Max(vec![
            PredictorSpec::NSigma { n: 3.0 },
            PredictorSpec::RcLike { percentile: 80.0 },
        ])
    }

    /// An extension policy: the deployed max composite guarded by the
    /// seasonal daily-peak profile, which closes the predictors'
    /// diurnal-trough blind spot (tasks admitted during the trough of a
    /// 10 h window co-peak a few hours later).
    pub fn seasonal_max() -> PredictorSpec {
        PredictorSpec::Max(vec![
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::RcLike { percentile: 99.0 },
            PredictorSpec::Seasonal {
                slots: 24,
                decay: 0.05,
                horizon_ticks: 24 * oc_trace::time::TICKS_PER_HOUR,
            },
        ])
    }

    /// The Borg default with the paper's φ = 0.9.
    pub fn borg_default() -> PredictorSpec {
        PredictorSpec::BorgDefault { phi: 0.9 }
    }

    /// The four-policy comparison set of Figure 10.
    pub fn comparison_set() -> Vec<PredictorSpec> {
        vec![
            PredictorSpec::borg_default(),
            PredictorSpec::RcLike { percentile: 99.0 },
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::paper_max(),
        ]
    }

    /// A short stable display name.
    pub fn name(&self) -> String {
        match self {
            PredictorSpec::LimitSum => "limit-sum".into(),
            PredictorSpec::BorgDefault { phi } => format!("borg-default({phi})"),
            PredictorSpec::RcLike { percentile } => format!("rc-like(p{percentile})"),
            PredictorSpec::NSigma { n } => format!("n-sigma({n})"),
            PredictorSpec::Seasonal { slots, decay, .. } => {
                format!("seasonal({slots}x,d={decay})")
            }
            PredictorSpec::Max(children) => {
                let inner: Vec<String> = children.iter().map(|c| c.name()).collect();
                format!("max({})", inner.join(","))
            }
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-domain parameters or
    /// an empty `Max` composite.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |what: String| Err(CoreError::InvalidConfig { what });
        match self {
            PredictorSpec::LimitSum => Ok(()),
            PredictorSpec::BorgDefault { phi } => {
                if !(0.0 < *phi && *phi <= 1.0) {
                    return fail(format!("borg-default phi {phi} must be in (0, 1]"));
                }
                Ok(())
            }
            PredictorSpec::RcLike { percentile } => {
                if !(0.0 < *percentile && *percentile <= 100.0) {
                    return fail(format!("rc-like percentile {percentile} out of (0, 100]"));
                }
                Ok(())
            }
            PredictorSpec::NSigma { n } => {
                if !n.is_finite() || *n < 0.0 {
                    return fail(format!("n-sigma multiplier {n} must be finite and >= 0"));
                }
                Ok(())
            }
            PredictorSpec::Seasonal {
                slots,
                decay,
                horizon_ticks,
            } => {
                if *slots == 0 {
                    return fail("seasonal slots must be positive".into());
                }
                if !(0.0..1.0).contains(decay) {
                    return fail(format!("seasonal decay {decay} out of [0, 1)"));
                }
                if *horizon_ticks == 0 {
                    return fail("seasonal horizon must be positive".into());
                }
                Ok(())
            }
            PredictorSpec::Max(children) => {
                if children.is_empty() {
                    return fail("max predictor needs at least one component".into());
                }
                children.iter().try_for_each(PredictorSpec::validate)
            }
        }
    }

    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] as [`PredictorSpec::validate`].
    pub fn build(&self) -> Result<Box<dyn PeakPredictor>, CoreError> {
        use crate::predictors::{BorgDefault, LimitSum, MaxPeak, NSigma, RcLike, Seasonal};
        self.validate()?;
        Ok(match self {
            PredictorSpec::LimitSum => Box::new(LimitSum),
            PredictorSpec::BorgDefault { phi } => Box::new(BorgDefault::new(*phi)),
            PredictorSpec::RcLike { percentile } => Box::new(RcLike::new(*percentile)),
            PredictorSpec::NSigma { n } => Box::new(NSigma::new(*n)),
            PredictorSpec::Seasonal {
                slots,
                decay,
                horizon_ticks,
            } => Box::new(Seasonal::new(*slots, *decay, *horizon_ticks)),
            PredictorSpec::Max(children) => {
                let built = children
                    .iter()
                    .map(PredictorSpec::build)
                    .collect::<Result<Vec<_>, _>>()?;
                Box::new(MaxPeak::new(built))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(PredictorSpec::LimitSum.name(), "limit-sum");
        assert_eq!(PredictorSpec::borg_default().name(), "borg-default(0.9)");
        assert_eq!(
            PredictorSpec::RcLike { percentile: 95.0 }.name(),
            "rc-like(p95)"
        );
        assert_eq!(PredictorSpec::NSigma { n: 2.0 }.name(), "n-sigma(2)");
        assert_eq!(
            PredictorSpec::production_max().name(),
            "max(n-sigma(3),rc-like(p80))"
        );
    }

    #[test]
    fn validation() {
        assert!(PredictorSpec::BorgDefault { phi: 0.0 }.validate().is_err());
        assert!(PredictorSpec::BorgDefault { phi: 1.1 }.validate().is_err());
        assert!(PredictorSpec::RcLike { percentile: 0.0 }
            .validate()
            .is_err());
        assert!(PredictorSpec::RcLike { percentile: 101.0 }
            .validate()
            .is_err());
        assert!(PredictorSpec::NSigma { n: -1.0 }.validate().is_err());
        assert!(PredictorSpec::NSigma { n: f64::NAN }.validate().is_err());
        assert!(PredictorSpec::Max(vec![]).validate().is_err());
        // A bad nested component fails the composite.
        assert!(PredictorSpec::Max(vec![PredictorSpec::NSigma { n: -2.0 }])
            .validate()
            .is_err());
        for spec in PredictorSpec::comparison_set() {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn build_produces_matching_names() {
        for spec in PredictorSpec::comparison_set() {
            assert_eq!(spec.build().unwrap().name(), spec.name());
        }
    }
}
