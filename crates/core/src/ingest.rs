//! Incremental, out-of-order-tolerant observation ingestion.
//!
//! The batch simulator ([`crate::sim`]) feeds a [`MachineView`] one
//! complete tick at a time: every alive task's `(id, limit, usage)` triple
//! arrives in a single [`MachineView::observe`] call. An *online* service
//! sees the same data as a stream of per-task samples — one RPC per task
//! per tick, interleaved across tasks, possibly duplicated, and advancing
//! to the next tick without any end-of-tick marker.
//!
//! [`IncrementalView`] bridges the two. It buffers samples for the current
//! tick and flushes the accumulated batch into the wrapped [`MachineView`]
//! exactly as the batch path would, when either
//!
//! * a sample for a **later** tick arrives (the natural end-of-tick signal
//!   in a sample stream), or
//! * the caller forces a [`flush`](IncrementalView::flush) — which is what
//!   a `PREDICT` request does, so predictions always reflect every sample
//!   received so far.
//!
//! Two properties make the online path equivalent to the batch path:
//!
//! 1. **Gap filling.** Ticks with no samples still advance the machine
//!    aggregate window in the batch path (`observe(t, [])` pushes a zero
//!    and departs every task). The incremental view synthesizes those
//!    empty observations for any tick between the last flushed tick (or
//!    the configured origin) and the tick being flushed, bounded by
//!    [`max_gap`](IncrementalView::with_max_gap) to stop a corrupt
//!    timestamp from looping for months of virtual time.
//! 2. **Arrival-order preservation.** Within a tick, samples are applied
//!    in first-arrival order (a repeated sample for the same task updates
//!    in place). The machine aggregate is a floating-point sum, so
//!    replaying a tick's samples in the batch path's order reproduces the
//!    batch state *bit for bit* — the guarantee `tests/serve_smoke.rs`
//!    checks end to end. Reordering within a tick changes only the
//!    summation order, perturbing the aggregate by rounding alone.
//!
//! Samples for an already-flushed tick are rejected as
//! [`CoreError::StaleSample`]: the view cannot rewrite history without
//! replaying every later tick.

use crate::config::SimConfig;
use crate::error::CoreError;
use crate::view::MachineView;
use oc_stats::resource::{Res2, CPU, NUM_RESOURCES, RESOURCE_NAMES};
use oc_trace::ids::TaskId;
use oc_trace::time::Tick;

/// Default bound on synthesized empty ticks between two samples
/// (one week of 5-minute ticks per day × ~23: roughly 7.5 months).
pub const DEFAULT_MAX_GAP: u64 = 1 << 16;

/// A [`MachineView`] fed by a stream of per-task samples instead of
/// complete per-tick batches.
///
/// # Examples
///
/// ```
/// use oc_core::config::SimConfig;
/// use oc_core::ingest::IncrementalView;
/// use oc_trace::ids::{JobId, TaskId};
/// use oc_trace::time::Tick;
///
/// let mut v = IncrementalView::new(1.0, &SimConfig::default());
/// let task = TaskId::new(JobId(1), 0);
/// v.ingest(Tick(0), task, 0.4, 0.1).unwrap();
/// // Tick 0 is still pending; a sample for tick 1 flushes it.
/// v.ingest(Tick(1), task, 0.4, 0.2).unwrap();
/// assert_eq!(v.flushed(), Some(Tick(0)));
/// v.flush();
/// assert_eq!(v.view().now(), Tick(1));
/// assert_eq!(v.view().total_limit(), 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalView {
    view: MachineView,
    origin: Tick,
    max_gap: u64,
    last_flushed: Option<Tick>,
    pending_tick: Option<Tick>,
    /// Samples of the pending tick in first-arrival order. Duplicate
    /// tasks within a tick are updated in place via linear scan — a
    /// machine hosts few tasks, and the side map this replaces cost a
    /// heap allocation per machine, which dominated fleet-scale memory.
    ///
    /// Scalar samples are stored with [`Res2::cpu_only`]; the flush path
    /// extracts lane 0 unchanged for scalar views, so the promotion is
    /// lossless (no arithmetic touches the stored values).
    pending: Vec<(TaskId, Res2, Res2)>,
    /// Sticky: set on the first [`ingest_vec`](IncrementalView::ingest_vec)
    /// and never cleared. A vector view flushes through
    /// [`MachineView::observe_vec`]; a scalar view through
    /// [`MachineView::observe`], preserving bit-identity with the batch
    /// scalar path.
    vector_mode: bool,
}

impl IncrementalView {
    /// Creates an empty incremental view for a machine of the given
    /// capacity. The trace origin defaults to [`Tick::ZERO`] and the gap
    /// bound to [`DEFAULT_MAX_GAP`].
    pub fn new(capacity: f64, cfg: &SimConfig) -> IncrementalView {
        IncrementalView {
            view: MachineView::new(capacity, cfg),
            origin: Tick::ZERO,
            max_gap: DEFAULT_MAX_GAP,
            last_flushed: None,
            pending_tick: None,
            pending: Vec::new(),
            vector_mode: false,
        }
    }

    /// Sets the trace origin: the first flush synthesizes empty ticks from
    /// `origin` up to the flushed tick, mirroring a batch replay that
    /// starts at `origin`.
    pub fn with_origin(mut self, origin: Tick) -> IncrementalView {
        self.origin = origin;
        self
    }

    /// Sets the bound on synthesized empty ticks per flush.
    pub fn with_max_gap(mut self, max_gap: u64) -> IncrementalView {
        self.max_gap = max_gap;
        self
    }

    /// Buffers one `(task, limit, usage)` sample for tick `t`, flushing
    /// the previously pending tick if `t` is later.
    ///
    /// # Errors
    ///
    /// * [`CoreError::StaleSample`] — `t` precedes the pending or an
    ///   already-flushed tick; the sample is dropped and the view is
    ///   unchanged.
    /// * [`CoreError::TickGap`] — flushing `t` would synthesize more than
    ///   the configured bound of empty ticks; the sample is dropped.
    /// * [`CoreError::InvalidSample`] — non-finite or negative `limit` or
    ///   `usage`.
    pub fn ingest(
        &mut self,
        t: Tick,
        task: TaskId,
        limit: f64,
        usage: f64,
    ) -> Result<(), CoreError> {
        if !limit.is_finite() || limit < 0.0 {
            return Err(CoreError::InvalidSample {
                what: format!("limit {limit} must be finite and >= 0"),
            });
        }
        if !usage.is_finite() || usage < 0.0 {
            return Err(CoreError::InvalidSample {
                what: format!("usage {usage} must be finite and >= 0"),
            });
        }
        self.ingest_inner(t, task, Res2::cpu_only(limit), Res2::cpu_only(usage))
    }

    /// Buffers one per-resource `(task, limit, usage)` sample for tick `t`,
    /// flushing the previously pending tick if `t` is later.
    ///
    /// The first vector sample switches the view into vector mode for its
    /// whole lifetime: all subsequent flushes (including gap fills) go
    /// through [`MachineView::observe_vec`], so the memory lane's windows
    /// advance with every tick. Scalar samples ingested after the switch
    /// record a memory usage and limit of zero — the wire protocol's
    /// backward-compatible reading of a scalar `OBSERVE`.
    ///
    /// # Errors
    ///
    /// Same as [`ingest`](IncrementalView::ingest);
    /// [`CoreError::InvalidSample`] checks every lane.
    pub fn ingest_vec(
        &mut self,
        t: Tick,
        task: TaskId,
        limit: Res2,
        usage: Res2,
    ) -> Result<(), CoreError> {
        for lane in 0..NUM_RESOURCES {
            let (l, u) = (limit.lane(lane), usage.lane(lane));
            if !l.is_finite() || l < 0.0 {
                return Err(CoreError::InvalidSample {
                    what: format!("{} limit {l} must be finite and >= 0", RESOURCE_NAMES[lane]),
                });
            }
            if !u.is_finite() || u < 0.0 {
                return Err(CoreError::InvalidSample {
                    what: format!("{} usage {u} must be finite and >= 0", RESOURCE_NAMES[lane]),
                });
            }
        }
        self.vector_mode = true;
        self.ingest_inner(t, task, limit, usage)
    }

    fn ingest_inner(
        &mut self,
        t: Tick,
        task: TaskId,
        limit: Res2,
        usage: Res2,
    ) -> Result<(), CoreError> {
        match self.pending_tick {
            Some(pt) if t < pt => {
                return Err(CoreError::StaleSample {
                    tick: t.0,
                    flushed: pt.0.saturating_sub(1),
                })
            }
            Some(pt) if t == pt => {
                self.push_pending(task, limit, usage);
                return Ok(());
            }
            Some(_) => {
                // t > pending: the pending tick is complete.
                self.check_gap(t)?;
                self.flush();
            }
            None => {
                if let Some(f) = self.last_flushed {
                    if t <= f {
                        return Err(CoreError::StaleSample {
                            tick: t.0,
                            flushed: f.0,
                        });
                    }
                }
                self.check_gap(t)?;
            }
        }
        self.pending_tick = Some(t);
        self.push_pending(task, limit, usage);
        Ok(())
    }

    /// Applies the pending tick (if any) to the wrapped view, synthesizing
    /// empty observations for any skipped ticks first. Returns whether a
    /// tick was flushed.
    pub fn flush(&mut self) -> bool {
        let Some(pt) = self.pending_tick.take() else {
            return false;
        };
        let start = self.fill_start();
        if self.vector_mode {
            for k in start..pt.0 {
                self.view.observe_vec(Tick(k), std::iter::empty());
            }
            self.view.observe_vec(pt, self.pending.drain(..));
        } else {
            for k in start..pt.0 {
                self.view.observe(Tick(k), std::iter::empty());
            }
            self.view.observe(
                pt,
                self.pending
                    .drain(..)
                    .map(|(id, l, u)| (id, l.lane(CPU), u.lane(CPU))),
            );
        }
        self.last_flushed = Some(pt);
        true
    }

    /// Whether a vector sample has ever been ingested (flushes go through
    /// the vector path once set).
    pub fn is_vector(&self) -> bool {
        self.vector_mode
    }

    /// The wrapped machine view, reflecting flushed ticks only. Call
    /// [`flush`](IncrementalView::flush) first to fold in the pending tick.
    pub fn view(&self) -> &MachineView {
        &self.view
    }

    /// The most recently flushed tick, if any.
    pub fn flushed(&self) -> Option<Tick> {
        self.last_flushed
    }

    /// The tick currently buffering samples, if any.
    pub fn pending_tick(&self) -> Option<Tick> {
        self.pending_tick
    }

    /// Number of samples buffered for the pending tick.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// First tick a flush of tick `>= fill_start` would synthesize.
    fn fill_start(&self) -> u64 {
        self.last_flushed.map(|f| f.0 + 1).unwrap_or(self.origin.0)
    }

    fn check_gap(&self, t: Tick) -> Result<(), CoreError> {
        // Count the empty ticks `t`'s flush would synthesize, as if the
        // pending tick (which flushes first) were already applied.
        let start = match self.pending_tick {
            Some(pt) => pt.0 + 1,
            None => self.fill_start(),
        };
        let gap = t.0.saturating_sub(start);
        if gap > self.max_gap {
            return Err(CoreError::TickGap {
                gap,
                max: self.max_gap,
            });
        }
        Ok(())
    }

    fn push_pending(&mut self, task: TaskId, limit: Res2, usage: Res2) {
        match self.pending.iter_mut().find(|(t, _, _)| *t == task) {
            Some(slot) => *slot = (task, limit, usage),
            None => self.pending.push((task, limit, usage)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorSpec;
    use oc_trace::cell::{CellConfig, CellPreset};
    use oc_trace::gen::WorkloadGenerator;
    use oc_trace::ids::{JobId, MachineId};

    fn tid(j: u64, i: u32) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn small_cfg() -> SimConfig {
        let mut c = SimConfig::default();
        c.min_num_samples = 3;
        c.max_num_samples = 5;
        c
    }

    #[test]
    fn batch_equivalence_in_arrival_order() {
        // Replaying a generated machine sample by sample, in the batch
        // path's task order, reproduces the batch view bit for bit.
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.duration_ticks = 96;
        let trace = WorkloadGenerator::new(cell)
            .unwrap()
            .generate_machine(MachineId(0))
            .unwrap();
        let cfg = SimConfig::default();
        let predictor = PredictorSpec::paper_max().build().unwrap();

        let mut batch = MachineView::new(trace.capacity, &cfg);
        let mut inc = IncrementalView::new(trace.capacity, &cfg);
        for t in trace.horizon.iter() {
            let alive: Vec<_> = trace
                .tasks_at(t)
                .map(|task| {
                    let usage = task.sample_at(t).map(|s| cfg.metric.of(s)).unwrap_or(0.0);
                    (task.spec.id, task.spec.limit, usage)
                })
                .collect();
            batch.observe(t, alive.iter().copied());
            for &(id, limit, usage) in &alive {
                inc.ingest(t, id, limit, usage).unwrap();
            }
            inc.flush();
            assert_eq!(
                predictor.predict(&batch).to_bits(),
                predictor.predict(inc.view()).to_bits(),
                "tick {t}"
            );
            assert_eq!(
                batch.total_limit().to_bits(),
                inc.view().total_limit().to_bits()
            );
            assert_eq!(batch.task_count(), inc.view().task_count());
        }
    }

    #[test]
    fn reordering_within_a_tick_is_tolerated() {
        // Samples of one tick arriving in any order produce the same task
        // set; the aggregate differs only by summation rounding.
        let cfg = small_cfg();
        let mut fwd = IncrementalView::new(1.0, &cfg);
        let mut rev = IncrementalView::new(1.0, &cfg);
        let samples = [
            (tid(1, 0), 0.4, 0.10),
            (tid(1, 1), 0.3, 0.20),
            (tid(2, 0), 0.2, 0.05),
        ];
        for t in 0..6u64 {
            for &(id, l, u) in &samples {
                fwd.ingest(Tick(t), id, l, u).unwrap();
            }
            for &(id, l, u) in samples.iter().rev() {
                rev.ingest(Tick(t), id, l, u).unwrap();
            }
        }
        fwd.flush();
        rev.flush();
        assert_eq!(fwd.view().task_count(), rev.view().task_count());
        assert_eq!(fwd.view().total_limit(), rev.view().total_limit());
        let (a, b) = (
            fwd.view().warm_aggregate().mean(),
            rev.view().warm_aggregate().mean(),
        );
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn duplicate_sample_updates_in_place() {
        let mut v = IncrementalView::new(1.0, &small_cfg());
        v.ingest(Tick(0), tid(1, 0), 0.4, 0.1).unwrap();
        v.ingest(Tick(0), tid(1, 0), 0.4, 0.3).unwrap();
        assert_eq!(v.pending_len(), 1);
        v.flush();
        let (_, t) = v.view().tasks().next().unwrap();
        assert_eq!(t.window().last(), Some(0.3));
    }

    #[test]
    fn stale_samples_are_rejected() {
        let mut v = IncrementalView::new(1.0, &small_cfg());
        v.ingest(Tick(5), tid(1, 0), 0.4, 0.1).unwrap();
        v.ingest(Tick(6), tid(1, 0), 0.4, 0.1).unwrap(); // flushes 5
        assert!(matches!(
            v.ingest(Tick(5), tid(1, 0), 0.4, 0.1),
            Err(CoreError::StaleSample {
                tick: 5,
                flushed: 5
            })
        ));
        v.flush();
        assert!(matches!(
            v.ingest(Tick(6), tid(1, 0), 0.4, 0.1),
            Err(CoreError::StaleSample {
                tick: 6,
                flushed: 6
            })
        ));
        // The view survives rejects.
        v.ingest(Tick(7), tid(1, 0), 0.4, 0.1).unwrap();
        v.flush();
        assert_eq!(v.flushed(), Some(Tick(7)));
    }

    #[test]
    fn gap_filling_matches_batch_empty_ticks() {
        let cfg = small_cfg();
        let mut batch = MachineView::new(1.0, &cfg);
        let mut inc = IncrementalView::new(1.0, &cfg);
        // Ticks 0-1 idle, task appears at tick 2, disappears 3-4, returns 5.
        let script: [&[(TaskId, f64, f64)]; 6] = [
            &[],
            &[],
            &[(tid(1, 0), 0.4, 0.2)],
            &[],
            &[],
            &[(tid(1, 0), 0.4, 0.2)],
        ];
        for (t, alive) in script.iter().enumerate() {
            batch.observe(Tick(t as u64), alive.iter().copied());
            for &(id, l, u) in alive.iter() {
                inc.ingest(Tick(t as u64), id, l, u).unwrap();
            }
        }
        inc.flush();
        assert_eq!(batch.now(), inc.view().now());
        assert_eq!(batch.task_count(), inc.view().task_count());
        assert_eq!(
            batch.warm_aggregate().len(),
            inc.view().warm_aggregate().len()
        );
        // The re-appearing task restarted cold in both paths.
        assert_eq!(batch.cold_limit_sum(), inc.view().cold_limit_sum());
        let (_, bt) = batch.tasks().next().unwrap();
        let (_, it) = inc.view().tasks().next().unwrap();
        assert_eq!(bt.age(), it.age());
        assert_eq!(bt.age(), 1);
    }

    #[test]
    fn oversized_gap_is_rejected_without_poisoning() {
        let mut v = IncrementalView::new(1.0, &small_cfg()).with_max_gap(10);
        v.ingest(Tick(0), tid(1, 0), 0.4, 0.1).unwrap();
        assert!(matches!(
            v.ingest(Tick(100), tid(1, 0), 0.4, 0.1),
            Err(CoreError::TickGap { gap: 99, max: 10 })
        ));
        // Pending tick 0 is still intact.
        assert_eq!(v.pending_tick(), Some(Tick(0)));
        v.ingest(Tick(5), tid(1, 0), 0.4, 0.1).unwrap();
        v.flush();
        assert_eq!(v.flushed(), Some(Tick(5)));
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let mut v = IncrementalView::new(1.0, &small_cfg());
        assert!(matches!(
            v.ingest(Tick(0), tid(1, 0), 0.4, f64::NAN),
            Err(CoreError::InvalidSample { .. })
        ));
        assert!(matches!(
            v.ingest(Tick(0), tid(1, 0), f64::INFINITY, 0.1),
            Err(CoreError::InvalidSample { .. })
        ));
        assert!(matches!(
            v.ingest(Tick(0), tid(1, 0), 0.4, -0.5),
            Err(CoreError::InvalidSample { .. })
        ));
        assert_eq!(v.pending_len(), 0);
    }

    #[test]
    fn vector_ingest_matches_batch_observe_vec() {
        // Vector samples replayed through the incremental path reproduce
        // an observe_vec batch replay, lane for lane.
        let cfg = small_cfg();
        let mut batch = MachineView::new(1.0, &cfg);
        let mut inc = IncrementalView::new(1.0, &cfg);
        let samples = [
            (tid(1, 0), Res2::from_lanes([0.4, 0.2]), 0.10, 0.05),
            (tid(1, 1), Res2::from_lanes([0.3, 0.1]), 0.20, 0.08),
        ];
        for t in 0..8u64 {
            let alive: Vec<_> = samples
                .iter()
                .map(|&(id, l, cu, mu)| (id, l, Res2::from_lanes([cu, mu])))
                .collect();
            batch.observe_vec(Tick(t), alive.iter().copied());
            for &(id, l, u) in &alive {
                inc.ingest_vec(Tick(t), id, l, u).unwrap();
            }
        }
        inc.flush();
        assert!(inc.is_vector());
        for lane in 0..NUM_RESOURCES {
            assert_eq!(
                batch.total_limit_lane(lane).to_bits(),
                inc.view().total_limit_lane(lane).to_bits(),
                "lane {lane} limit"
            );
            assert_eq!(
                batch.warm_aggregate_lane(lane).mean().to_bits(),
                inc.view().warm_aggregate_lane(lane).mean().to_bits(),
                "lane {lane} aggregate"
            );
        }
    }

    #[test]
    fn vector_mode_is_sticky_and_gap_fills_memory_lane() {
        let cfg = small_cfg();
        let mut inc = IncrementalView::new(1.0, &cfg);
        let limit = Res2::from_lanes([0.4, 0.2]);
        inc.ingest_vec(Tick(0), tid(1, 0), limit, Res2::from_lanes([0.1, 0.05]))
            .unwrap();
        // A scalar sample after the switch stays on the vector path.
        inc.ingest(Tick(3), tid(1, 0), 0.4, 0.1).unwrap();
        inc.flush();
        assert!(inc.is_vector());
        // Gap ticks 1-2 advanced the memory aggregate window too.
        assert_eq!(
            inc.view().warm_aggregate_lane(CPU).len(),
            inc.view()
                .warm_aggregate_lane(oc_stats::resource::MEM)
                .len()
        );
        // The scalar sample recorded zero memory usage/limit.
        assert_eq!(inc.view().total_limit_lane(oc_stats::resource::MEM), 0.0);
    }

    #[test]
    fn vector_samples_validate_every_lane() {
        let mut v = IncrementalView::new(1.0, &small_cfg());
        assert!(matches!(
            v.ingest_vec(
                Tick(0),
                tid(1, 0),
                Res2::from_lanes([0.4, f64::NAN]),
                Res2::from_lanes([0.1, 0.0])
            ),
            Err(CoreError::InvalidSample { .. })
        ));
        assert!(matches!(
            v.ingest_vec(
                Tick(0),
                tid(1, 0),
                Res2::from_lanes([0.4, 0.2]),
                Res2::from_lanes([0.1, -0.1])
            ),
            Err(CoreError::InvalidSample { .. })
        ));
        // Rejected samples do not flip the mode.
        assert!(!v.is_vector());
    }

    #[test]
    fn origin_controls_leading_gap() {
        let cfg = small_cfg();
        let mut batch = MachineView::new(1.0, &cfg);
        for t in 0..4u64 {
            let alive: &[(TaskId, f64, f64)] = if t == 3 {
                &[(tid(1, 0), 0.4, 0.2)]
            } else {
                &[]
            };
            batch.observe(Tick(t), alive.iter().copied());
        }
        let mut inc = IncrementalView::new(1.0, &cfg).with_origin(Tick::ZERO);
        inc.ingest(Tick(3), tid(1, 0), 0.4, 0.2).unwrap();
        inc.flush();
        assert_eq!(
            batch.warm_aggregate().len(),
            inc.view().warm_aggregate().len()
        );
        assert_eq!(batch.now(), inc.view().now());
    }
}
