//! The machine-local state practical predictors operate on.
//!
//! The paper's predictors run in the Borglet, on the machine, with strictly
//! bounded state: for every task a moving window of its most recent usage
//! samples (`max_num_samples`), an age counter for warm-up accounting, and
//! the task's limit. [`MachineView`] is exactly that state. It is fed one
//! observation per 5-minute tick — by the trace replayer in simulation or
//! by the live cluster in the scheduler — and predictors read it without
//! seeing anything a real node agent would not have.
//!
//! Warm-up semantics follow Section 4: a task with fewer than
//! `min_num_samples` observed samples is *cold*; predictions are made over
//! warm tasks only and the limits of cold tasks are added on top. The
//! machine-level aggregate window used by the N-sigma predictor records,
//! per tick, the summed usage of the tasks that were warm at that tick.
//!
//! # Resource lanes
//!
//! The view tracks a small fixed set of resource *lanes* (see
//! [`oc_stats::resource`]): lane 0 is CPU, lane 1 memory. State is laid
//! out structure-of-arrays — the CPU lane is exactly the original scalar
//! state, and memory-lane windows/sums live in parallel fields — so the
//! scalar [`MachineView::observe`] path performs the identical float-op
//! sequence it always did (goldens stay bit-exact) and each lane's
//! incremental update works on its own contiguous buffer. The vector
//! ingest path is [`MachineView::observe_vec`]; ticks fed through the
//! scalar path do not advance memory-lane windows (a scalar sample
//! carries no memory information).

use crate::config::SimConfig;
use oc_stats::resource::{Res2, CPU, MEM};
use oc_stats::{MovingWindow, OrderStatWindow, PeakWindow};
use oc_telemetry::Counter;
use oc_trace::ids::TaskId;
use oc_trace::time::Tick;
use std::sync::{Arc, OnceLock};

/// Cached handle for the `core.view.observe_ticks` counter: one count per
/// [`MachineView::observe`] call across every view in the process.
fn observe_ticks_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| oc_telemetry::global_metrics().counter("core.view.observe_ticks"))
}

/// Memory-lane state of one task: limit plus a windowed-peak tracker,
/// boxed so that scalar-only (CPU) serving pays one pointer per task,
/// not a whole second window.
///
/// The memory lane deliberately keeps a [`PeakWindow`], not a full
/// [`OrderStatWindow`]: memory is incompressible (overrunning it kills
/// tasks instead of throttling them), so per-task admission needs the
/// recent *peak*, and tracking only the peak keeps the second lane's
/// push O(1) amortized — the vectorized observe path stays inside the
/// hot-path bench envelope (`BENCH_hot_path.json`).
#[derive(Debug, Clone)]
struct MemLane {
    limit: f64,
    window: PeakWindow,
}

/// Per-task state maintained by the node agent.
#[derive(Debug, Clone)]
pub struct TaskView {
    limit: f64,
    window: OrderStatWindow,
    age: usize,
    /// Generation stamp of the last tick this task was observed alive.
    last_seen: u64,
    /// Memory-lane state; `None` until the task is observed through
    /// [`MachineView::observe_vec`].
    mem: Option<Box<MemLane>>,
}

impl TaskView {
    /// The task's CPU resource limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// The task's limit in resource lane `lane` (0.0 for a memory lane
    /// that has never been observed).
    pub fn limit_lane(&self, lane: usize) -> f64 {
        match lane {
            CPU => self.limit,
            MEM => self.mem.as_ref().map_or(0.0, |m| m.limit),
            _ => panic!("resource lane {lane} out of range"),
        }
    }

    /// Window of the most recent CPU usage samples. Order statistics
    /// (percentile, max) are O(1) reads — this is what keeps the RC-like
    /// predictor's per-tick cost flat.
    pub fn window(&self) -> &OrderStatWindow {
        &self.window
    }

    /// Windowed peak of the task's recent memory usage; `None` for a
    /// task that has never been observed through
    /// [`MachineView::observe_vec`].
    ///
    /// The memory lane exposes only its peak (no arbitrary percentiles):
    /// memory is incompressible, so predictors gate the lane on peak
    /// demand, and the O(1)-push [`PeakWindow`] behind this accessor is
    /// what keeps the vectorized observe path inside the hot-path bench
    /// envelope.
    pub fn mem_peak(&self) -> Option<f64> {
        self.mem.as_deref().and_then(|m| m.window.max())
    }

    /// Number of memory-usage samples currently retained (0 for a task
    /// never observed through [`MachineView::observe_vec`]).
    pub fn mem_samples(&self) -> usize {
        self.mem.as_deref().map_or(0, |m| m.window.len())
    }

    /// Number of samples observed over the task's lifetime (may exceed the
    /// window capacity).
    pub fn age(&self) -> usize {
        self.age
    }
}

/// One machine's predictor-visible state.
///
/// # Examples
///
/// ```
/// use oc_core::config::SimConfig;
/// use oc_core::view::MachineView;
/// use oc_trace::ids::{JobId, TaskId};
/// use oc_trace::time::Tick;
///
/// let cfg = SimConfig::default();
/// let mut view = MachineView::new(1.0, &cfg);
/// let task = TaskId::new(JobId(1), 0);
/// view.observe(Tick(0), [(task, 0.4, 0.1)]);
/// assert_eq!(view.total_limit(), 0.4);
/// // One sample < 24-sample warm-up: the task is still cold.
/// assert_eq!(view.cold_limit_sum(), 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct MachineView {
    capacity: f64,
    now: Tick,
    min_num_samples: usize,
    max_num_samples: usize,
    /// Alive tasks, sorted by [`TaskId`]. A sorted `Vec` rather than a
    /// `BTreeMap`: fleets hold millions of machines with a handful of
    /// tasks each, and a one-entry B-tree still allocates a full
    /// node-sized block (~1 KiB), which dominated per-machine memory —
    /// and on hosts with slow first-touch page faults, ingest wall time.
    /// Iteration order (ascending `TaskId`) is identical, so every
    /// order-sensitive float reduction over tasks is bit-preserved.
    tasks: Vec<(TaskId, TaskView)>,
    /// Per-tick summed CPU usage of then-warm tasks.
    warm_window: MovingWindow,
    /// Per-tick summed memory usage of then-warm tasks; advanced only by
    /// [`MachineView::observe_vec`].
    warm_mem_window: MovingWindow,
    /// Current Σ CPU limits over cold tasks.
    cold_limit_sum: f64,
    /// Current Σ CPU limits over all tasks.
    total_limit: f64,
    /// Current Σ memory limits over cold tasks.
    cold_mem_limit_sum: f64,
    /// Current Σ memory limits over all tasks.
    total_mem_limit: f64,
    /// Observation counter; each [`MachineView::observe`] call stamps the
    /// tasks it sees, and the sweep drops tasks with a stale stamp.
    generation: u64,
}

impl MachineView {
    /// Creates an empty view for a machine of the given capacity.
    pub fn new(capacity: f64, cfg: &SimConfig) -> MachineView {
        let cap = cfg.max_num_samples.max(1);
        MachineView {
            capacity,
            now: Tick::ZERO,
            min_num_samples: cfg.min_num_samples,
            max_num_samples: cap,
            tasks: Vec::new(),
            warm_window: MovingWindow::new(cap).expect("capacity >= 1"),
            warm_mem_window: MovingWindow::new(cap).expect("capacity >= 1"),
            cold_limit_sum: 0.0,
            total_limit: 0.0,
            cold_mem_limit_sum: 0.0,
            total_mem_limit: 0.0,
            generation: 0,
        }
    }

    /// Feeds one tick of observations: `(task, limit, usage)` for every
    /// task alive on the machine this tick. Departed tasks (present before,
    /// absent now) are dropped, new tasks are registered, and the aggregate
    /// warm-usage window advances by one sample.
    ///
    /// The limit sums are refreshed only when an event that can change them
    /// occurs — a task admission, departure, limit change, or cold→warm
    /// transition. Task limits are static in traces and warm-up happens
    /// once per task, so steady-state ticks skip the O(tasks) rescans the
    /// sums used to cost; when a refresh does run it is the same exact
    /// summation as before, so the sums never drift. Departures are found
    /// by a generation-stamp sweep (each seen task is stamped with the
    /// current observation number), replacing the per-tick sort +
    /// binary-search membership test.
    pub fn observe(&mut self, t: Tick, alive: impl IntoIterator<Item = (TaskId, f64, f64)>) {
        // Guarded so a replay with observability off pays one relaxed
        // load per tick, nothing more.
        if oc_telemetry::enabled() {
            observe_ticks_counter().inc();
        }
        self.now = t;
        self.generation += 1;
        let generation = self.generation;
        let max_num_samples = self.max_num_samples;
        let mut warm_total = 0.0;
        let mut sums_stale = false;
        for (id, limit, usage) in alive {
            let entry = match self.tasks.binary_search_by(|(tid, _)| tid.cmp(&id)) {
                Ok(i) => &mut self.tasks[i].1,
                Err(i) => {
                    let view = TaskView {
                        limit,
                        window: OrderStatWindow::new(max_num_samples).expect("capacity >= 1"),
                        age: 0,
                        last_seen: 0,
                        mem: None,
                    };
                    self.tasks.insert(i, (id, view));
                    &mut self.tasks[i].1
                }
            };
            let admitted = entry.age == 0;
            let was_warm = !admitted && entry.age >= self.min_num_samples;
            sums_stale |= admitted || entry.limit != limit;
            entry.limit = limit;
            entry.window.push(usage);
            entry.age += 1;
            entry.last_seen = generation;
            if entry.age >= self.min_num_samples {
                warm_total += usage;
                sums_stale |= !was_warm;
            }
        }
        let mut departed = false;
        self.tasks.retain(|(_, task)| {
            let keep = task.last_seen == generation;
            departed |= !keep;
            keep
        });
        sums_stale |= departed;
        self.warm_window.push(warm_total);

        if sums_stale {
            self.refresh_limit_sums();
        }
    }

    /// Vector counterpart of [`MachineView::observe`]: feeds one tick of
    /// per-lane observations, `(task, limits, usage)` as [`Res2`] values.
    ///
    /// The CPU lane performs the same operations in the same order as the
    /// scalar path (binary-search upsert, lane-0 window push, warm-total
    /// accumulation, generation sweep, event-triggered sum refresh), so a
    /// stream of scalar samples promoted with [`Res2::cpu_only`] produces
    /// bit-identical CPU-lane state. The memory lane additionally pushes
    /// into each task's lazily-created memory window and advances the
    /// memory warm-aggregate window.
    pub fn observe_vec(&mut self, t: Tick, alive: impl IntoIterator<Item = (TaskId, Res2, Res2)>) {
        if oc_telemetry::enabled() {
            observe_ticks_counter().inc();
        }
        self.now = t;
        self.generation += 1;
        let generation = self.generation;
        let max_num_samples = self.max_num_samples;
        let mut warm_total = 0.0;
        let mut warm_mem_total = 0.0;
        let mut sums_stale = false;
        for (id, limit, usage) in alive {
            let entry = match self.tasks.binary_search_by(|(tid, _)| tid.cmp(&id)) {
                Ok(i) => &mut self.tasks[i].1,
                Err(i) => {
                    let view = TaskView {
                        limit: limit.lane(CPU),
                        window: OrderStatWindow::new(max_num_samples).expect("capacity >= 1"),
                        age: 0,
                        last_seen: 0,
                        mem: None,
                    };
                    self.tasks.insert(i, (id, view));
                    &mut self.tasks[i].1
                }
            };
            let admitted = entry.age == 0;
            let was_warm = !admitted && entry.age >= self.min_num_samples;
            sums_stale |= admitted || entry.limit != limit.lane(CPU);
            entry.limit = limit.lane(CPU);
            entry.window.push(usage.lane(CPU));
            let mem = entry.mem.get_or_insert_with(|| {
                Box::new(MemLane {
                    limit: 0.0,
                    window: PeakWindow::new(max_num_samples).expect("capacity >= 1"),
                })
            });
            sums_stale |= mem.limit != limit.lane(MEM);
            mem.limit = limit.lane(MEM);
            mem.window.push(usage.lane(MEM));
            entry.age += 1;
            entry.last_seen = generation;
            if entry.age >= self.min_num_samples {
                warm_total += usage.lane(CPU);
                warm_mem_total += usage.lane(MEM);
                sums_stale |= !was_warm;
            }
        }
        let mut departed = false;
        self.tasks.retain(|(_, task)| {
            let keep = task.last_seen == generation;
            departed |= !keep;
            keep
        });
        sums_stale |= departed;
        self.warm_window.push(warm_total);
        self.warm_mem_window.push(warm_mem_total);

        if sums_stale {
            self.refresh_limit_sums();
        }
    }

    /// Recomputes the event-triggered limit sums for every lane. The CPU
    /// sums use the exact summation order the scalar path always used.
    fn refresh_limit_sums(&mut self) {
        self.total_limit = self.tasks.iter().map(|(_, t)| t.limit).sum();
        self.cold_limit_sum = self
            .tasks
            .iter()
            .filter(|(_, t)| t.age < self.min_num_samples)
            .map(|(_, t)| t.limit)
            .sum();
        self.total_mem_limit = self.tasks.iter().map(|(_, t)| t.limit_lane(MEM)).sum();
        self.cold_mem_limit_sum = self
            .tasks
            .iter()
            .filter(|(_, t)| t.age < self.min_num_samples)
            .map(|(_, t)| t.limit_lane(MEM))
            .sum();
    }

    /// The machine's physical capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The tick of the most recent observation.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The warm-up threshold in samples.
    pub fn min_num_samples(&self) -> usize {
        self.min_num_samples
    }

    /// The per-task window capacity in samples.
    pub fn max_num_samples(&self) -> usize {
        self.max_num_samples
    }

    /// Number of tasks currently alive.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Σ CPU limits over all alive tasks — the conservative no-overcommit
    /// peak.
    pub fn total_limit(&self) -> f64 {
        self.total_limit
    }

    /// Σ CPU limits over tasks still in warm-up.
    pub fn cold_limit_sum(&self) -> f64 {
        self.cold_limit_sum
    }

    /// Σ limits over all alive tasks in resource lane `lane`.
    pub fn total_limit_lane(&self, lane: usize) -> f64 {
        match lane {
            CPU => self.total_limit,
            MEM => self.total_mem_limit,
            _ => panic!("resource lane {lane} out of range"),
        }
    }

    /// Σ limits over tasks still in warm-up, in resource lane `lane`.
    pub fn cold_limit_sum_lane(&self, lane: usize) -> f64 {
        match lane {
            CPU => self.cold_limit_sum,
            MEM => self.cold_mem_limit_sum,
            _ => panic!("resource lane {lane} out of range"),
        }
    }

    /// Per-lane Σ limits over all alive tasks as a vector.
    pub fn total_limit_vec(&self) -> Res2 {
        Res2::from_lanes([self.total_limit, self.total_mem_limit])
    }

    /// Iterates over warm tasks (those past the warm-up threshold).
    pub fn warm_tasks(&self) -> impl Iterator<Item = (&TaskId, &TaskView)> {
        self.tasks
            .iter()
            .filter(|(_, t)| t.age >= self.min_num_samples)
            .map(|(id, t)| (id, t))
    }

    /// Iterates over all alive tasks, in ascending [`TaskId`] order.
    pub fn tasks(&self) -> impl Iterator<Item = (&TaskId, &TaskView)> {
        self.tasks.iter().map(|(id, t)| (id, t))
    }

    /// The machine-level aggregate CPU usage window (per tick, Σ usage
    /// over the tasks that were warm at that tick).
    pub fn warm_aggregate(&self) -> &MovingWindow {
        &self.warm_window
    }

    /// The machine-level aggregate usage window for resource lane `lane`.
    /// The memory-lane window only advances on [`MachineView::observe_vec`]
    /// ticks.
    pub fn warm_aggregate_lane(&self, lane: usize) -> &MovingWindow {
        match lane {
            CPU => &self.warm_window,
            MEM => &self.warm_mem_window,
            _ => panic!("resource lane {lane} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::ids::JobId;

    fn tid(j: u64, i: u32) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn small_cfg() -> SimConfig {
        let mut c = SimConfig::default();
        c.min_num_samples = 3;
        c.max_num_samples = 5;
        c
    }

    #[test]
    fn warmup_transitions() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..5u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, 0.1)]);
            let warm = v.warm_tasks().count();
            if k < 2 {
                assert_eq!(warm, 0, "tick {k}");
                assert_eq!(v.cold_limit_sum(), 0.4);
            } else {
                assert_eq!(warm, 1, "tick {k}");
                assert_eq!(v.cold_limit_sum(), 0.0);
            }
        }
        assert_eq!(v.total_limit(), 0.4);
        assert_eq!(v.now(), Tick(4));
    }

    #[test]
    fn departed_tasks_are_dropped() {
        let mut v = MachineView::new(1.0, &small_cfg());
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.1), (tid(2, 0), 0.2, 0.05)]);
        assert_eq!(v.task_count(), 2);
        v.observe(Tick(1), [(tid(2, 0), 0.2, 0.05)]);
        assert_eq!(v.task_count(), 1);
        assert_eq!(v.total_limit(), 0.2);
    }

    #[test]
    fn aggregate_window_counts_only_then_warm_tasks() {
        let mut v = MachineView::new(1.0, &small_cfg());
        // Tick 0-1: task cold, aggregate records 0.
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.10)]);
        v.observe(Tick(1), [(tid(1, 0), 0.4, 0.20)]);
        assert_eq!(v.warm_aggregate().last(), Some(0.0));
        // Tick 2: third sample — warm from now on.
        v.observe(Tick(2), [(tid(1, 0), 0.4, 0.30)]);
        assert_eq!(v.warm_aggregate().last(), Some(0.30));
        assert_eq!(v.warm_aggregate().len(), 3);
    }

    #[test]
    fn window_capacity_is_bounded() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..50u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, k as f64)]);
        }
        let (_, t) = v.tasks().next().unwrap();
        assert_eq!(t.window().len(), 5);
        assert_eq!(t.age(), 50);
        assert_eq!(t.window().last(), Some(49.0));
        assert_eq!(v.warm_aggregate().len(), 5);
    }

    #[test]
    fn readmitted_task_restarts_cold() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..4u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, 0.1)]);
        }
        assert_eq!(v.warm_tasks().count(), 1);
        v.observe(Tick(4), []); // Departs.
        v.observe(Tick(5), [(tid(1, 0), 0.4, 0.1)]); // Same id returns.
        assert_eq!(v.warm_tasks().count(), 0);
        assert_eq!(v.cold_limit_sum(), 0.4);
    }

    #[test]
    fn limit_updates_are_tracked() {
        // Autopilot-style limit changes must be reflected immediately.
        let mut v = MachineView::new(1.0, &small_cfg());
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.1)]);
        v.observe(Tick(1), [(tid(1, 0), 0.6, 0.1)]);
        assert_eq!(v.total_limit(), 0.6);
    }

    #[test]
    fn vector_cpu_lane_is_bit_identical_to_scalar() {
        // The same observation stream through observe() and through
        // observe_vec() (scalar samples promoted with cpu_only) must leave
        // identical CPU-lane state — sums, per-task windows, aggregate.
        let mut scalar = MachineView::new(1.0, &small_cfg());
        let mut vector = MachineView::new(1.0, &small_cfg());
        let stream: Vec<Vec<(TaskId, f64, f64)>> = (0..12u64)
            .map(|t| {
                let mut obs = vec![(tid(1, 0), 0.4, 0.05 + 0.01 * t as f64)];
                if t % 3 != 0 {
                    obs.push((tid(2, 0), 0.3, 0.2 - 0.01 * t as f64));
                }
                obs
            })
            .collect();
        for (t, obs) in stream.iter().enumerate() {
            scalar.observe(Tick(t as u64), obs.iter().copied());
            vector.observe_vec(
                Tick(t as u64),
                obs.iter()
                    .map(|&(id, l, u)| (id, Res2::cpu_only(l), Res2::cpu_only(u))),
            );
            assert_eq!(
                scalar.total_limit().to_bits(),
                vector.total_limit().to_bits()
            );
            assert_eq!(
                scalar.cold_limit_sum().to_bits(),
                vector.cold_limit_sum().to_bits()
            );
            assert_eq!(
                scalar.warm_aggregate().mean().to_bits(),
                vector.warm_aggregate().mean().to_bits()
            );
        }
        for ((_, a), (_, b)) in scalar.tasks().zip(vector.tasks()) {
            assert_eq!(a.window().sorted(), b.window().sorted());
        }
        // Promoted scalar samples record zero in the memory lane.
        assert_eq!(vector.total_limit_lane(MEM), 0.0);
    }

    #[test]
    fn memory_lane_tracks_sums_and_windows() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for t in 0..4u64 {
            v.observe_vec(
                Tick(t),
                [(
                    tid(1, 0),
                    Res2::from_lanes([0.4, 0.2]),
                    Res2::from_lanes([0.1, 0.08]),
                )],
            );
        }
        assert_eq!(v.total_limit_lane(MEM), 0.2);
        assert_eq!(v.cold_limit_sum_lane(MEM), 0.0); // Warm after 3 ticks.
        assert_eq!(v.total_limit_vec().lanes(), &[0.4, 0.2]);
        let (_, t) = v.tasks().next().unwrap();
        assert_eq!(t.limit_lane(MEM), 0.2);
        assert_eq!(t.mem_peak(), Some(0.08));
        assert_eq!(v.warm_aggregate_lane(MEM).last(), Some(0.08));
    }

    #[test]
    fn scalar_ticks_leave_memory_lane_untouched() {
        let mut v = MachineView::new(1.0, &small_cfg());
        v.observe_vec(
            Tick(0),
            [(
                tid(1, 0),
                Res2::from_lanes([0.4, 0.2]),
                Res2::from_lanes([0.1, 0.08]),
            )],
        );
        let mem_len = v.tasks().next().unwrap().1.mem_samples();
        v.observe(Tick(1), [(tid(1, 0), 0.4, 0.1)]);
        let (_, t) = v.tasks().next().unwrap();
        assert_eq!(t.mem_samples(), mem_len);
        assert_eq!(t.window().len(), 2);
        // The memory limit survives a scalar tick (sums stay exact).
        assert_eq!(v.total_limit_lane(MEM), 0.2);
    }
}
