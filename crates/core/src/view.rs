//! The machine-local state practical predictors operate on.
//!
//! The paper's predictors run in the Borglet, on the machine, with strictly
//! bounded state: for every task a moving window of its most recent usage
//! samples (`max_num_samples`), an age counter for warm-up accounting, and
//! the task's limit. [`MachineView`] is exactly that state. It is fed one
//! observation per 5-minute tick — by the trace replayer in simulation or
//! by the live cluster in the scheduler — and predictors read it without
//! seeing anything a real node agent would not have.
//!
//! Warm-up semantics follow Section 4: a task with fewer than
//! `min_num_samples` observed samples is *cold*; predictions are made over
//! warm tasks only and the limits of cold tasks are added on top. The
//! machine-level aggregate window used by the N-sigma predictor records,
//! per tick, the summed usage of the tasks that were warm at that tick.

use crate::config::SimConfig;
use oc_stats::{MovingWindow, OrderStatWindow};
use oc_telemetry::Counter;
use oc_trace::ids::TaskId;
use oc_trace::time::Tick;
use std::sync::{Arc, OnceLock};

/// Cached handle for the `core.view.observe_ticks` counter: one count per
/// [`MachineView::observe`] call across every view in the process.
fn observe_ticks_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| oc_telemetry::global_metrics().counter("core.view.observe_ticks"))
}

/// Per-task state maintained by the node agent.
#[derive(Debug, Clone)]
pub struct TaskView {
    limit: f64,
    window: OrderStatWindow,
    age: usize,
    /// Generation stamp of the last tick this task was observed alive.
    last_seen: u64,
}

impl TaskView {
    /// The task's resource limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Window of the most recent usage samples. Order statistics
    /// (percentile, max) are O(1) reads — this is what keeps the RC-like
    /// predictor's per-tick cost flat.
    pub fn window(&self) -> &OrderStatWindow {
        &self.window
    }

    /// Number of samples observed over the task's lifetime (may exceed the
    /// window capacity).
    pub fn age(&self) -> usize {
        self.age
    }
}

/// One machine's predictor-visible state.
///
/// # Examples
///
/// ```
/// use oc_core::config::SimConfig;
/// use oc_core::view::MachineView;
/// use oc_trace::ids::{JobId, TaskId};
/// use oc_trace::time::Tick;
///
/// let cfg = SimConfig::default();
/// let mut view = MachineView::new(1.0, &cfg);
/// let task = TaskId::new(JobId(1), 0);
/// view.observe(Tick(0), [(task, 0.4, 0.1)]);
/// assert_eq!(view.total_limit(), 0.4);
/// // One sample < 24-sample warm-up: the task is still cold.
/// assert_eq!(view.cold_limit_sum(), 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct MachineView {
    capacity: f64,
    now: Tick,
    min_num_samples: usize,
    max_num_samples: usize,
    /// Alive tasks, sorted by [`TaskId`]. A sorted `Vec` rather than a
    /// `BTreeMap`: fleets hold millions of machines with a handful of
    /// tasks each, and a one-entry B-tree still allocates a full
    /// node-sized block (~1 KiB), which dominated per-machine memory —
    /// and on hosts with slow first-touch page faults, ingest wall time.
    /// Iteration order (ascending `TaskId`) is identical, so every
    /// order-sensitive float reduction over tasks is bit-preserved.
    tasks: Vec<(TaskId, TaskView)>,
    /// Per-tick summed usage of then-warm tasks.
    warm_window: MovingWindow,
    /// Current Σ limits over cold tasks.
    cold_limit_sum: f64,
    /// Current Σ limits over all tasks.
    total_limit: f64,
    /// Observation counter; each [`MachineView::observe`] call stamps the
    /// tasks it sees, and the sweep drops tasks with a stale stamp.
    generation: u64,
}

impl MachineView {
    /// Creates an empty view for a machine of the given capacity.
    pub fn new(capacity: f64, cfg: &SimConfig) -> MachineView {
        let cap = cfg.max_num_samples.max(1);
        MachineView {
            capacity,
            now: Tick::ZERO,
            min_num_samples: cfg.min_num_samples,
            max_num_samples: cap,
            tasks: Vec::new(),
            warm_window: MovingWindow::new(cap).expect("capacity >= 1"),
            cold_limit_sum: 0.0,
            total_limit: 0.0,
            generation: 0,
        }
    }

    /// Feeds one tick of observations: `(task, limit, usage)` for every
    /// task alive on the machine this tick. Departed tasks (present before,
    /// absent now) are dropped, new tasks are registered, and the aggregate
    /// warm-usage window advances by one sample.
    ///
    /// The limit sums are refreshed only when an event that can change them
    /// occurs — a task admission, departure, limit change, or cold→warm
    /// transition. Task limits are static in traces and warm-up happens
    /// once per task, so steady-state ticks skip the O(tasks) rescans the
    /// sums used to cost; when a refresh does run it is the same exact
    /// summation as before, so the sums never drift. Departures are found
    /// by a generation-stamp sweep (each seen task is stamped with the
    /// current observation number), replacing the per-tick sort +
    /// binary-search membership test.
    pub fn observe(&mut self, t: Tick, alive: impl IntoIterator<Item = (TaskId, f64, f64)>) {
        // Guarded so a replay with observability off pays one relaxed
        // load per tick, nothing more.
        if oc_telemetry::enabled() {
            observe_ticks_counter().inc();
        }
        self.now = t;
        self.generation += 1;
        let generation = self.generation;
        let max_num_samples = self.max_num_samples;
        let mut warm_total = 0.0;
        let mut sums_stale = false;
        for (id, limit, usage) in alive {
            let entry = match self.tasks.binary_search_by(|(tid, _)| tid.cmp(&id)) {
                Ok(i) => &mut self.tasks[i].1,
                Err(i) => {
                    let view = TaskView {
                        limit,
                        window: OrderStatWindow::new(max_num_samples).expect("capacity >= 1"),
                        age: 0,
                        last_seen: 0,
                    };
                    self.tasks.insert(i, (id, view));
                    &mut self.tasks[i].1
                }
            };
            let admitted = entry.age == 0;
            let was_warm = !admitted && entry.age >= self.min_num_samples;
            sums_stale |= admitted || entry.limit != limit;
            entry.limit = limit;
            entry.window.push(usage);
            entry.age += 1;
            entry.last_seen = generation;
            if entry.age >= self.min_num_samples {
                warm_total += usage;
                sums_stale |= !was_warm;
            }
        }
        let mut departed = false;
        self.tasks.retain(|(_, task)| {
            let keep = task.last_seen == generation;
            departed |= !keep;
            keep
        });
        sums_stale |= departed;
        self.warm_window.push(warm_total);

        if sums_stale {
            self.total_limit = self.tasks.iter().map(|(_, t)| t.limit).sum();
            self.cold_limit_sum = self
                .tasks
                .iter()
                .filter(|(_, t)| t.age < self.min_num_samples)
                .map(|(_, t)| t.limit)
                .sum();
        }
    }

    /// The machine's physical capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The tick of the most recent observation.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The warm-up threshold in samples.
    pub fn min_num_samples(&self) -> usize {
        self.min_num_samples
    }

    /// The per-task window capacity in samples.
    pub fn max_num_samples(&self) -> usize {
        self.max_num_samples
    }

    /// Number of tasks currently alive.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Σ limits over all alive tasks — the conservative no-overcommit peak.
    pub fn total_limit(&self) -> f64 {
        self.total_limit
    }

    /// Σ limits over tasks still in warm-up.
    pub fn cold_limit_sum(&self) -> f64 {
        self.cold_limit_sum
    }

    /// Iterates over warm tasks (those past the warm-up threshold).
    pub fn warm_tasks(&self) -> impl Iterator<Item = (&TaskId, &TaskView)> {
        self.tasks
            .iter()
            .filter(|(_, t)| t.age >= self.min_num_samples)
            .map(|(id, t)| (id, t))
    }

    /// Iterates over all alive tasks, in ascending [`TaskId`] order.
    pub fn tasks(&self) -> impl Iterator<Item = (&TaskId, &TaskView)> {
        self.tasks.iter().map(|(id, t)| (id, t))
    }

    /// The machine-level aggregate usage window (per tick, Σ usage over the
    /// tasks that were warm at that tick).
    pub fn warm_aggregate(&self) -> &MovingWindow {
        &self.warm_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::ids::JobId;

    fn tid(j: u64, i: u32) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn small_cfg() -> SimConfig {
        let mut c = SimConfig::default();
        c.min_num_samples = 3;
        c.max_num_samples = 5;
        c
    }

    #[test]
    fn warmup_transitions() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..5u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, 0.1)]);
            let warm = v.warm_tasks().count();
            if k < 2 {
                assert_eq!(warm, 0, "tick {k}");
                assert_eq!(v.cold_limit_sum(), 0.4);
            } else {
                assert_eq!(warm, 1, "tick {k}");
                assert_eq!(v.cold_limit_sum(), 0.0);
            }
        }
        assert_eq!(v.total_limit(), 0.4);
        assert_eq!(v.now(), Tick(4));
    }

    #[test]
    fn departed_tasks_are_dropped() {
        let mut v = MachineView::new(1.0, &small_cfg());
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.1), (tid(2, 0), 0.2, 0.05)]);
        assert_eq!(v.task_count(), 2);
        v.observe(Tick(1), [(tid(2, 0), 0.2, 0.05)]);
        assert_eq!(v.task_count(), 1);
        assert_eq!(v.total_limit(), 0.2);
    }

    #[test]
    fn aggregate_window_counts_only_then_warm_tasks() {
        let mut v = MachineView::new(1.0, &small_cfg());
        // Tick 0-1: task cold, aggregate records 0.
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.10)]);
        v.observe(Tick(1), [(tid(1, 0), 0.4, 0.20)]);
        assert_eq!(v.warm_aggregate().last(), Some(0.0));
        // Tick 2: third sample — warm from now on.
        v.observe(Tick(2), [(tid(1, 0), 0.4, 0.30)]);
        assert_eq!(v.warm_aggregate().last(), Some(0.30));
        assert_eq!(v.warm_aggregate().len(), 3);
    }

    #[test]
    fn window_capacity_is_bounded() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..50u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, k as f64)]);
        }
        let (_, t) = v.tasks().next().unwrap();
        assert_eq!(t.window().len(), 5);
        assert_eq!(t.age(), 50);
        assert_eq!(t.window().last(), Some(49.0));
        assert_eq!(v.warm_aggregate().len(), 5);
    }

    #[test]
    fn readmitted_task_restarts_cold() {
        let mut v = MachineView::new(1.0, &small_cfg());
        for k in 0..4u64 {
            v.observe(Tick(k), [(tid(1, 0), 0.4, 0.1)]);
        }
        assert_eq!(v.warm_tasks().count(), 1);
        v.observe(Tick(4), []); // Departs.
        v.observe(Tick(5), [(tid(1, 0), 0.4, 0.1)]); // Same id returns.
        assert_eq!(v.warm_tasks().count(), 0);
        assert_eq!(v.cold_limit_sum(), 0.4);
    }

    #[test]
    fn limit_updates_are_tracked() {
        // Autopilot-style limit changes must be reflected immediately.
        let mut v = MachineView::new(1.0, &small_cfg());
        v.observe(Tick(0), [(tid(1, 0), 0.4, 0.1)]);
        v.observe(Tick(1), [(tid(1, 0), 0.6, 0.1)]);
        assert_eq!(v.total_limit(), 0.6);
    }
}
