//! Peak prediction-driven overcommitment — the paper's core contribution.
//!
//! This crate implements Sections 3–5 of *"Take it to the Limit: Peak
//! Prediction-driven Resource Overcommitment in Datacenters"* (EuroSys '21):
//!
//! * [`oracle`] — the clairvoyant peak oracle
//!   `PO(J, τ) = max_{t ≥ τ} Σᵢ Uᵢ(t)`, the provably safe and maximally
//!   efficient baseline, computed in O(n) per machine for any horizon.
//! * [`view`] — the node-agent state practical predictors are allowed to
//!   see: bounded per-task sample windows and warm-up counters.
//! * [`predictor`] / [`predictors`] — the [`PeakPredictor`] trait and the
//!   paper's policies: `limit-sum` (no overcommit), `borg-default`
//!   (static φ·ΣL), `RC-like` (per-task percentiles), `N-sigma`
//!   (machine-aggregate Gaussian), and `max` composites.
//! * [`sim`] / [`runner`] — the fortune-teller replay loop and the
//!   parallel cell-level runner.
//! * [`metrics`] — violation rate, violation severity and savings ratio
//!   (Section 5.1.3).
//!
//! # Examples
//!
//! Simulate one generated machine under the deployed policy:
//!
//! ```
//! use oc_core::config::SimConfig;
//! use oc_core::predictor::PredictorSpec;
//! use oc_core::sim::simulate_machine;
//! use oc_trace::cell::{CellConfig, CellPreset};
//! use oc_trace::gen::WorkloadGenerator;
//! use oc_trace::ids::MachineId;
//!
//! let mut cell = CellConfig::preset(CellPreset::A);
//! cell.duration_ticks = 288;
//! let gen = WorkloadGenerator::new(cell).unwrap();
//! let trace = gen.generate_machine(MachineId(0)).unwrap();
//!
//! let predictors = vec![PredictorSpec::paper_max().build().unwrap()];
//! let result = simulate_machine(&trace, &SimConfig::default(), &predictors).unwrap();
//! let report = &result.reports[0];
//! println!(
//!     "violation rate {:.4}, savings {:.3}",
//!     report.violation_rate(),
//!     report.mean_savings()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autopilot;
pub mod config;
pub mod error;
pub mod ingest;
pub mod metrics;
pub mod oracle;
pub mod predictor;
pub mod predictors;
pub mod runner;
pub mod segtree;
pub mod sim;
pub mod view;

pub use config::SimConfig;
pub use error::CoreError;
pub use ingest::IncrementalView;
pub use metrics::{
    LaneReports, MachineReport, MachineSeries, MachineSeriesVec, SimResult, SimResultVec,
};
pub use predictor::{PeakPredictor, PredictorSpec};
pub use runner::{run_cell, run_cell_streaming, CellRun};
pub use view::MachineView;
