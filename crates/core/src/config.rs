//! Simulation configuration.

use crate::error::CoreError;
use oc_trace::sample::UsageMetric;
use oc_trace::time::TICKS_PER_HOUR;

/// Configuration of one fortune-teller simulation run.
///
/// These are the knobs Section 4 and Section 5 of the paper expose:
///
/// * `metric` — which field of the 5-minute usage summary predictors and
///   oracles consume (the artifact's "choose the metric"; the paper uses
///   the 90th percentile as a conservative machine-peak estimator).
/// * `min_num_samples` — the warm-up: a task with fewer samples contributes
///   its *limit* rather than a prediction.
/// * `max_num_samples` — the per-task history window retained by the node
///   agent.
/// * `oracle_horizon_ticks` — how far into the future the peak oracle looks
///   (24 h by default, following the paper's Figure 7(b) analysis).
///
/// # Examples
///
/// ```
/// use oc_core::config::SimConfig;
///
/// let cfg = SimConfig::default().with_warmup_hours(2.0).with_history_hours(10.0);
/// assert_eq!(cfg.min_num_samples, 24);
/// assert_eq!(cfg.max_num_samples, 120);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Usage summary field consumed by predictors and ground truth.
    pub metric: UsageMetric,
    /// Warm-up threshold in samples (the paper's `min_num_samples`).
    pub min_num_samples: usize,
    /// Per-task history window in samples (the paper's `max_num_samples`).
    pub max_num_samples: usize,
    /// Oracle forecast horizon in ticks.
    pub oracle_horizon_ticks: u64,
    /// Record full per-tick series (predictions, limits) in reports.
    ///
    /// Cell-level savings (Figure 10(d)) and several figures need the
    /// per-tick series; per-machine summary metrics do not. Recording costs
    /// one `f64` per machine-tick per predictor.
    pub record_series: bool,
}

impl Default for SimConfig {
    /// The paper's simulation defaults: p90 metric, 2 h warm-up, 10 h
    /// history, 24 h oracle horizon.
    fn default() -> Self {
        SimConfig {
            metric: UsageMetric::P90,
            min_num_samples: (2 * TICKS_PER_HOUR) as usize,
            max_num_samples: (10 * TICKS_PER_HOUR) as usize,
            oracle_horizon_ticks: 24 * TICKS_PER_HOUR,
            record_series: false,
        }
    }
}

impl SimConfig {
    /// Sets the warm-up period in hours.
    pub fn with_warmup_hours(mut self, hours: f64) -> SimConfig {
        self.min_num_samples = (hours * TICKS_PER_HOUR as f64).round() as usize;
        self
    }

    /// Sets the history window in hours.
    pub fn with_history_hours(mut self, hours: f64) -> SimConfig {
        self.max_num_samples = ((hours * TICKS_PER_HOUR as f64).round() as usize).max(1);
        self
    }

    /// Sets the oracle horizon in hours.
    pub fn with_horizon_hours(mut self, hours: f64) -> SimConfig {
        self.oracle_horizon_ticks = (hours * TICKS_PER_HOUR as f64).round() as u64;
        self
    }

    /// Sets the usage metric.
    pub fn with_metric(mut self, metric: UsageMetric) -> SimConfig {
        self.metric = metric;
        self
    }

    /// Enables per-tick series recording.
    pub fn with_series(mut self) -> SimConfig {
        self.record_series = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the history window is empty,
    /// smaller than the warm-up, or the oracle horizon is zero.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_num_samples == 0 {
            return Err(CoreError::InvalidConfig {
                what: "max_num_samples must be positive".into(),
            });
        }
        if self.min_num_samples > self.max_num_samples {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "min_num_samples ({}) exceeds max_num_samples ({})",
                    self.min_num_samples, self.max_num_samples
                ),
            });
        }
        if self.oracle_horizon_ticks == 0 {
            return Err(CoreError::InvalidConfig {
                what: "oracle horizon must be positive".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.metric, UsageMetric::P90);
        assert_eq!(c.min_num_samples, 24); // 2 h.
        assert_eq!(c.max_num_samples, 120); // 10 h.
        assert_eq!(c.oracle_horizon_ticks, 288); // 24 h.
        c.validate().unwrap();
    }

    #[test]
    fn builders() {
        let c = SimConfig::default()
            .with_warmup_hours(1.0)
            .with_history_hours(5.0)
            .with_horizon_hours(48.0)
            .with_metric(UsageMetric::Max)
            .with_series();
        assert_eq!(c.min_num_samples, 12);
        assert_eq!(c.max_num_samples, 60);
        assert_eq!(c.oracle_horizon_ticks, 576);
        assert!(c.record_series);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SimConfig::default();
        c.max_num_samples = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.min_num_samples = c.max_num_samples + 1;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.oracle_horizon_ticks = 0;
        assert!(c.validate().is_err());
    }
}
