//! A max segment tree over `f64`, used by the scheduled-tasks peak oracle.
//!
//! The oracle needs range-maximum queries over a usage series that *grows*
//! as the replay admits tasks (each task's samples are added exactly once,
//! when the replay reaches the task's start tick). A segment tree gives
//! O(log n) point updates and O(log n) range-max queries, keeping the whole
//! oracle computation O((samples + ticks) · log ticks) per machine.

/// A fixed-size max segment tree over `f64` values, initialized to zero.
#[derive(Debug, Clone)]
pub struct MaxTree {
    /// Number of leaves.
    n: usize,
    /// 1-based implicit binary tree; `tree[1]` is the root.
    tree: Vec<f64>,
}

impl MaxTree {
    /// Creates a tree over `n` zero-valued slots.
    pub fn new(n: usize) -> MaxTree {
        let size = n.next_power_of_two().max(1);
        MaxTree {
            n,
            tree: vec![0.0; 2 * size],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` to slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn add(&mut self, i: usize, delta: f64) {
        assert!(i < self.n, "index {i} out of bounds {}", self.n);
        let size = self.tree.len() / 2;
        let mut node = size + i;
        self.tree[node] += delta;
        node /= 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
            node /= 2;
        }
    }

    /// The value at slot `i`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.n, "index {i} out of bounds {}", self.n);
        self.tree[self.tree.len() / 2 + i]
    }

    /// Maximum over the half-open slot range `[lo, hi)`; `0.0` for an empty
    /// range (every slot starts at zero and usage is non-negative).
    pub fn range_max(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.n);
        if lo >= hi {
            return 0.0;
        }
        let size = self.tree.len() / 2;
        let mut lo = size + lo;
        let mut hi = size + hi; // Exclusive.
        let mut best = f64::NEG_INFINITY;
        while lo < hi {
            if lo % 2 == 1 {
                best = best.max(self.tree[lo]);
                lo += 1;
            }
            if hi % 2 == 1 {
                hi -= 1;
                best = best.max(self.tree[hi]);
            }
            lo /= 2;
            hi /= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_updates_and_queries() {
        let mut t = MaxTree::new(10);
        t.add(3, 5.0);
        t.add(7, 2.0);
        assert_eq!(t.get(3), 5.0);
        assert_eq!(t.range_max(0, 10), 5.0);
        assert_eq!(t.range_max(4, 10), 2.0);
        assert_eq!(t.range_max(4, 7), 0.0);
        t.add(3, -1.0);
        assert_eq!(t.range_max(0, 10), 4.0);
    }

    #[test]
    fn empty_and_clamped_ranges() {
        let t = MaxTree::new(5);
        assert_eq!(t.range_max(3, 3), 0.0);
        assert_eq!(t.range_max(4, 100), 0.0); // hi clamps to n.
        assert!(!t.is_empty());
        assert_eq!(t.len(), 5);
        assert!(MaxTree::new(0).is_empty());
    }

    #[test]
    fn matches_naive_on_random_workload() {
        let n = 37; // Non-power-of-two.
        let mut t = MaxTree::new(n);
        let mut naive = vec![0.0f64; n];
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..500 {
            let i = (next() % n as u64) as usize;
            let delta = ((next() % 1000) as f64 - 300.0) / 100.0;
            t.add(i, delta);
            naive[i] += delta;
            let lo = (next() % n as u64) as usize;
            let hi = lo + (next() % (n as u64 - lo as u64 + 1)) as usize;
            let expected = if lo >= hi {
                0.0
            } else {
                naive[lo..hi]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            let got = t.range_max(lo, hi);
            assert!(
                (got - expected).abs() < 1e-9,
                "range [{lo}, {hi}): got {got}, expected {expected}"
            );
        }
    }
}
