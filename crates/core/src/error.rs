//! Error type for simulator configuration and execution.

use std::fmt;

/// Errors produced by the overcommit simulator.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The input trace was rejected.
    Trace(oc_trace::TraceError),
    /// A numerical routine failed.
    Stats(oc_stats::StatsError),
    /// An incremental sample arrived for a tick that was already flushed
    /// into the view (see [`crate::ingest::IncrementalView`]).
    StaleSample {
        /// Tick of the rejected sample.
        tick: u64,
        /// Most recent tick already applied to the view.
        flushed: u64,
    },
    /// Applying an incremental sample would synthesize more empty ticks
    /// than the configured bound (a guard against runaway timestamps).
    TickGap {
        /// Number of empty ticks that would have been synthesized.
        gap: u64,
        /// The configured bound.
        max: u64,
    },
    /// An incremental sample carried a non-finite or negative value.
    InvalidSample {
        /// Description of the rejected field.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            CoreError::Trace(e) => write!(f, "trace error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::StaleSample { tick, flushed } => {
                write!(
                    f,
                    "stale sample for tick {tick}: tick {flushed} already flushed"
                )
            }
            CoreError::TickGap { gap, max } => {
                write!(
                    f,
                    "tick gap of {gap} empty ticks exceeds the bound of {max}"
                )
            }
            CoreError::InvalidSample { what } => write!(f, "invalid sample: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Trace(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidConfig { .. }
            | CoreError::StaleSample { .. }
            | CoreError::TickGap { .. }
            | CoreError::InvalidSample { .. } => None,
        }
    }
}

impl From<oc_trace::TraceError> for CoreError {
    fn from(e: oc_trace::TraceError) -> Self {
        CoreError::Trace(e)
    }
}

impl From<oc_stats::StatsError> for CoreError {
    fn from(e: oc_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidConfig {
            what: "horizon must be positive".into(),
        };
        assert!(e.to_string().contains("horizon"));
        assert!(e.source().is_none());

        let e = CoreError::from(oc_stats::StatsError::Empty);
        assert!(e.source().is_some());
    }
}
