//! Error type for simulator configuration and execution.

use std::fmt;

/// Errors produced by the overcommit simulator.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The input trace was rejected.
    Trace(oc_trace::TraceError),
    /// A numerical routine failed.
    Stats(oc_stats::StatsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            CoreError::Trace(e) => write!(f, "trace error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Trace(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<oc_trace::TraceError> for CoreError {
    fn from(e: oc_trace::TraceError) -> Self {
        CoreError::Trace(e)
    }
}

impl From<oc_stats::StatsError> for CoreError {
    fn from(e: oc_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidConfig {
            what: "horizon must be positive".into(),
        };
        assert!(e.to_string().contains("horizon"));
        assert!(e.source().is_none());

        let e = CoreError::from(oc_stats::StatsError::Empty);
        assert!(e.source().is_some());
    }
}
