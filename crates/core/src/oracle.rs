//! The clairvoyant peak oracle (Section 3 of the paper).
//!
//! The oracle at time `τ` is the future peak usage of the tasks *scheduled
//! at `τ`*: `PO(J_s, τ) = max_{τ ≤ t < τ+H} Σ_{i ∈ J_s} Uᵢ(t)`, with
//! completed tasks contributing zero. Tasks that arrive after `τ` are not
//! in `J_s` and therefore not seen — this is what makes the oracle the
//! boundary of *safe* admission: it bounds what the already-admitted
//! workload can do, and consequently never exceeds the sum of limits
//! (which is why borg-default's violation severity is structurally capped
//! at `1 − φ`, as Section 5.4 observes).
//!
//! Computation per machine is O((samples + ticks) · log ticks): tasks'
//! usage series are added into a [`MaxTree`] as the scan passes their start
//! tick, and each `τ` issues one range-max query over `[τ, τ+H)`. A task
//! alive at `τ` contributes over its whole remaining lifetime; a task that
//! started after `τ` has not been added yet when `τ` is queried — queries
//! are issued *before* admitting tasks of later ticks.

use crate::segtree::MaxTree;
use oc_trace::memory::MemoryModel;
use oc_trace::sample::UsageMetric;
use oc_trace::time::Tick;
use oc_trace::MachineTrace;

/// Sliding-window future maximum of a fixed series.
///
/// `out[i] = max(series[i..min(i + horizon, n)])`, computed in O(n) with a
/// monotonic deque. This is the oracle over a series that does not change
/// with `τ` — e.g. a single task's own usage, or a machine's ground-truth
/// peak when arrival effects are deliberately included.
///
/// # Examples
///
/// ```
/// use oc_core::oracle::future_peak;
///
/// let po = future_peak(&[1.0, 5.0, 2.0, 4.0], 2);
/// assert_eq!(po, vec![5.0, 5.0, 4.0, 4.0]);
/// ```
pub fn future_peak(series: &[f64], horizon: u64) -> Vec<f64> {
    let n = series.len();
    let h = (horizon.max(1) as usize).min(n.max(1));
    let mut out = vec![0.0; n];
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for i in (0..n).rev() {
        while let Some(&back) = deque.back() {
            if series[back] <= series[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        while let Some(&front) = deque.front() {
            if front >= i + h {
                deque.pop_front();
            } else {
                break;
            }
        }
        out[i] = series[*deque.front().expect("deque holds at least i")];
    }
    out
}

/// Per-tick peak-oracle series for a machine, restricted to the tasks
/// scheduled at each tick (the paper's `PO(J_s, τ)`).
///
/// `metric` selects which field of the 5-minute usage summary represents a
/// task's usage — the paper uses the 90th percentile as its conservative
/// machine-peak estimate (Section 5.1.2). Usage is per-task capped at the
/// limit by the trace itself.
pub fn machine_oracle(trace: &MachineTrace, metric: UsageMetric, horizon_ticks: u64) -> Vec<f64> {
    let start = trace.horizon.start.index();
    let n = trace.horizon.len() as usize;
    let h = horizon_ticks.max(1) as usize;
    let mut tree = MaxTree::new(n);
    let mut out = vec![0.0; n];
    // Tasks are sorted by start tick.
    let mut next_task = 0usize;
    for i in 0..n {
        // Admit tasks starting at tick `start + i` *before* querying `τ = i`:
        // they are part of J_s at their start tick.
        while next_task < trace.tasks.len()
            && trace.tasks[next_task].spec.start.index() - start <= i as u64
        {
            let task = &trace.tasks[next_task];
            let t0 = (task.spec.start.index() - start) as usize;
            for (k, s) in task.samples.iter().enumerate() {
                let idx = t0 + k;
                if idx < n {
                    tree.add(idx, metric.of(s));
                }
            }
            next_task += 1;
        }
        out[i] = tree.range_max(i, i + h);
    }
    out
}

/// Per-tick memory-lane peak-oracle series for a machine, the analogue of
/// [`machine_oracle`] over the derived memory series.
///
/// Each task's memory usage at a tick is [`MemoryModel::usage`] of its CPU
/// usage (by `metric`) at that tick — the same value the vector replay
/// feeds the view — so oracle and prediction compare like for like.
pub fn memory_oracle(
    trace: &MachineTrace,
    model: &MemoryModel,
    metric: UsageMetric,
    horizon_ticks: u64,
) -> Vec<f64> {
    let start = trace.horizon.start.index();
    let n = trace.horizon.len() as usize;
    let h = horizon_ticks.max(1) as usize;
    let mut tree = MaxTree::new(n);
    let mut out = vec![0.0; n];
    let mut next_task = 0usize;
    for i in 0..n {
        while next_task < trace.tasks.len()
            && trace.tasks[next_task].spec.start.index() - start <= i as u64
        {
            let task = &trace.tasks[next_task];
            let t0 = (task.spec.start.index() - start) as usize;
            for (k, s) in task.samples.iter().enumerate() {
                let idx = t0 + k;
                if idx < n {
                    let t = Tick(start + idx as u64);
                    tree.add(idx, model.usage(&task.spec, t, metric.of(s)));
                }
            }
            next_task += 1;
        }
        out[i] = tree.range_max(i, i + h);
    }
    out
}

/// Per-task future peak series (used by Figure 1's task-level aggregate).
///
/// For each tick of the task's lifetime, the maximum of the task's usage
/// (by `metric`) from that tick to the earlier of the task's end or the
/// horizon.
pub fn task_future_peak(
    task: &oc_trace::TaskTrace,
    metric: UsageMetric,
    horizon_ticks: u64,
) -> Vec<f64> {
    let series: Vec<f64> = task.samples.iter().map(|s| metric.of(s)).collect();
    future_peak(&series, horizon_ticks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::{CellConfig, CellPreset};
    use oc_trace::gen::WorkloadGenerator;
    use oc_trace::ids::MachineId;
    use oc_trace::time::Tick;

    #[test]
    fn empty_series() {
        assert!(future_peak(&[], 5).is_empty());
    }

    #[test]
    fn full_horizon_is_suffix_max() {
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let po = future_peak(&s, s.len() as u64 + 100);
        assert_eq!(po, vec![9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 6.0, 6.0]);
    }

    #[test]
    fn horizon_one_is_identity() {
        let s = [3.0, 1.0, 4.0];
        assert_eq!(future_peak(&s, 1), s.to_vec());
        assert_eq!(future_peak(&s, 0), s.to_vec());
    }

    #[test]
    fn sliding_max_matches_naive() {
        let s: Vec<f64> = (0..200)
            .map(|i| ((i * 2654435761u64) % 1000) as f64 / 1000.0)
            .collect();
        for horizon in [1u64, 2, 7, 50, 200, 500] {
            let fast = future_peak(&s, horizon);
            for i in 0..s.len() {
                let end = (i + horizon as usize).min(s.len());
                let naive = s[i..end].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(fast[i], naive, "i={i} horizon={horizon}");
            }
        }
    }

    fn trace() -> MachineTrace {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.duration_ticks = 288;
        WorkloadGenerator::new(cell)
            .unwrap()
            .generate_machine(MachineId(0))
            .unwrap()
    }

    /// Naive scheduled-tasks oracle for cross-checking.
    fn naive_oracle(trace: &MachineTrace, metric: UsageMetric, horizon: u64) -> Vec<f64> {
        let n = trace.horizon.len() as usize;
        let mut out = vec![0.0; n];
        for tau in 0..n {
            let alive: Vec<_> = trace
                .tasks
                .iter()
                .filter(|t| t.spec.alive_at(Tick(tau as u64)))
                .collect();
            let end = (tau + horizon as usize).min(n);
            let mut best = 0.0f64;
            for t in tau..end {
                let total: f64 = alive
                    .iter()
                    .map(|task| {
                        task.sample_at(Tick(t as u64))
                            .map(|s| metric.of(s))
                            .unwrap_or(0.0)
                    })
                    .sum();
                best = best.max(total);
            }
            out[tau] = best;
        }
        out
    }

    #[test]
    fn scheduled_oracle_matches_naive() {
        let tr = trace();
        for horizon in [6u64, 48, 288] {
            let fast = machine_oracle(&tr, UsageMetric::P90, horizon);
            let naive = naive_oracle(&tr, UsageMetric::P90, horizon);
            for i in 0..fast.len() {
                assert!(
                    (fast[i] - naive[i]).abs() < 1e-9,
                    "tau={i} horizon={horizon}: fast {} vs naive {}",
                    fast[i],
                    naive[i]
                );
            }
        }
    }

    #[test]
    fn oracle_never_exceeds_limit_sum() {
        // PO(J_s, τ) <= Σ_{i in J_s} L_i: per-task usage is capped at the
        // limit and only scheduled tasks count.
        let tr = trace();
        let po = machine_oracle(&tr, UsageMetric::Max, 288);
        for tau in 0..po.len() {
            let limit = tr.total_limit_at(Tick(tau as u64));
            assert!(
                po[tau] <= limit + 1e-9,
                "tau={tau}: oracle {} above Σ limits {limit}",
                po[tau]
            );
        }
    }

    #[test]
    fn longer_horizon_never_smaller() {
        let tr = trace();
        let short = machine_oracle(&tr, UsageMetric::P90, 12);
        let long = machine_oracle(&tr, UsageMetric::P90, 288);
        for (a, b) in short.iter().zip(long.iter()) {
            assert!(b + 1e-12 >= *a);
        }
    }

    #[test]
    fn oracle_sees_present_usage() {
        // PO(τ) >= current total usage at τ.
        let tr = trace();
        let po = machine_oracle(&tr, UsageMetric::P90, 24);
        for tau in (0..po.len()).step_by(13) {
            let now = tr.total_usage_at(Tick(tau as u64), UsageMetric::P90);
            assert!(
                po[tau] + 1e-9 >= now,
                "tau={tau}: oracle {} below current usage {now}",
                po[tau]
            );
        }
    }

    #[test]
    fn task_future_peak_is_suffix_max_of_metric() {
        let tr = trace();
        let task = &tr.tasks[0];
        let fp = task_future_peak(task, UsageMetric::Max, u64::MAX);
        let series: Vec<f64> = task.samples.iter().map(|s| s.max).collect();
        let mut suffix = f64::NEG_INFINITY;
        let mut expected = vec![0.0; series.len()];
        for i in (0..series.len()).rev() {
            suffix = suffix.max(series[i]);
            expected[i] = suffix;
        }
        assert_eq!(fp, expected);
    }
}
