//! The fortune-teller: replaying one machine against its oracle.
//!
//! This mirrors the paper's simulator core (Figure 5): for each instant
//! `τ`, the predictor sees only the history `U[t], t ≤ τ` through its
//! [`MachineView`], while the oracle sees the future `U[t], t ≥ τ`. The two
//! are compared tick by tick and accumulated into [`MachineReport`]s.

use crate::config::SimConfig;
use crate::error::CoreError;
use crate::metrics::{
    LaneReports, MachineReport, MachineSeries, MachineSeriesVec, SimResult, SimResultVec,
};
use crate::oracle::{machine_oracle, memory_oracle};
use crate::predictor::PeakPredictor;
use crate::view::MachineView;
use oc_stats::resource::{Res2, CPU, MEM, RESOURCE_NAMES};
use oc_telemetry::{trace, Counter};
use oc_trace::memory::MemoryModel;
use oc_trace::time::Tick;
use oc_trace::MachineTrace;
use std::sync::{Arc, OnceLock};

/// When tracing is enabled, one `sim.tick` span is recorded every this
/// many ticks. Sampling (rather than a span per tick) bounds trace volume
/// on month-long replays while still catching slow-tick outliers at a
/// useful rate.
const TICK_SPAN_SAMPLE: usize = 64;

/// Cached handles for the simulator's hot-path counters. Resolved once;
/// the per-replay updates are bulk adds, so a traced replay costs the
/// same per tick as an untraced one.
struct SimCounters {
    ticks: Arc<Counter>,
    predictor_evals: Arc<Counter>,
}

fn sim_counters() -> &'static SimCounters {
    static COUNTERS: OnceLock<SimCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let m = oc_telemetry::global_metrics();
        SimCounters {
            ticks: m.counter("sim.ticks"),
            predictor_evals: m.counter("sim.predictor_evals"),
        }
    })
}

/// Simulates one machine against a set of predictors.
///
/// For every tick of the machine's horizon the view is fed the tick's
/// observations, each predictor produces its estimate, and prediction,
/// oracle, and Σ limits are recorded.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `cfg` or
/// [`CoreError::Trace`] if the machine trace fails validation.
///
/// # Examples
///
/// ```
/// use oc_core::config::SimConfig;
/// use oc_core::predictor::PredictorSpec;
/// use oc_core::sim::simulate_machine;
/// use oc_trace::cell::{CellConfig, CellPreset};
/// use oc_trace::gen::WorkloadGenerator;
/// use oc_trace::ids::MachineId;
///
/// let mut cell = CellConfig::preset(CellPreset::A);
/// cell.duration_ticks = 96;
/// let gen = WorkloadGenerator::new(cell).unwrap();
/// let trace = gen.generate_machine(MachineId(0)).unwrap();
/// let predictors = vec![PredictorSpec::borg_default().build().unwrap()];
/// let result = simulate_machine(&trace, &SimConfig::default(), &predictors).unwrap();
/// assert_eq!(result.reports.len(), 1);
/// assert_eq!(result.reports[0].ticks, 96);
/// ```
pub fn simulate_machine(
    trace: &MachineTrace,
    cfg: &SimConfig,
    predictors: &[Box<dyn PeakPredictor>],
) -> Result<SimResult, CoreError> {
    cfg.validate()?;
    trace.validate()?;
    let oracle = machine_oracle(trace, cfg.metric, cfg.oracle_horizon_ticks);
    let mut reports: Vec<MachineReport> = predictors
        .iter()
        .map(|p| MachineReport::new(trace.machine, p.name()))
        .collect();
    let n_ticks = trace.horizon.len() as usize;
    let mut series = cfg.record_series.then(|| MachineSeries {
        limit: Vec::with_capacity(n_ticks),
        oracle: oracle.clone(),
        true_peak: trace.true_peak.clone(),
        avg_usage: trace.avg_usage.clone(),
        predictions: vec![Vec::with_capacity(n_ticks); predictors.len()],
    });

    drive_ticks(trace, cfg, |i, _t, view| {
        let po = oracle[i];
        let limit = view.total_limit();
        for (j, predictor) in predictors.iter().enumerate() {
            let p = predictor.predict(view);
            reports[j].record(p, po, limit);
            if let Some(series) = series.as_mut() {
                series.predictions[j].push(p);
            }
        }
        if let Some(series) = series.as_mut() {
            series.limit.push(limit);
        }
    })?;

    // Bulk-add once per replay: O(1) regardless of horizon length, and
    // only when observability is switched on at all.
    if oc_telemetry::enabled() {
        let c = sim_counters();
        c.ticks.add(trace.horizon.len());
        c.predictor_evals
            .add(trace.horizon.len() * predictors.len() as u64);
    }

    Ok(SimResult {
        machine: trace.machine,
        capacity: trace.capacity,
        reports,
        series,
    })
}

/// Vector counterpart of [`simulate_machine`]: replays one machine with
/// per-lane (CPU + memory) observations, predictions, and oracles.
///
/// The CPU lane reproduces the scalar replay bit for bit — same
/// observation order, same predictor formulas (via
/// [`PeakPredictor::predict_lane`] lane 0), same accounting — so
/// `result.reports[j].lane(CPU)` matches `simulate_machine`'s
/// `reports[j]` exactly. The memory lane derives each task's usage from
/// `mem_model` (a pure function of the CPU series, no RNG) and is judged
/// against [`memory_oracle`]. Per-lane violation totals are exported as
/// `sim.violations.cpu` / `sim.violations.mem` counters when telemetry is
/// enabled.
///
/// Memory capacity is normalized to 1.0 per machine, mirroring the CPU
/// convention.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `cfg` or
/// [`CoreError::Trace`] if the machine trace fails validation.
pub fn simulate_machine_vec(
    trace: &MachineTrace,
    cfg: &SimConfig,
    predictors: &[Box<dyn PeakPredictor>],
    mem_model: &MemoryModel,
) -> Result<SimResultVec, CoreError> {
    cfg.validate()?;
    trace.validate()?;
    let oracle_cpu = machine_oracle(trace, cfg.metric, cfg.oracle_horizon_ticks);
    let oracle_mem = memory_oracle(trace, mem_model, cfg.metric, cfg.oracle_horizon_ticks);
    let mut reports: Vec<LaneReports> = predictors
        .iter()
        .map(|p| LaneReports::new(trace.machine, p.name()))
        .collect();
    let n_ticks = trace.horizon.len() as usize;
    let mut series = cfg.record_series.then(|| MachineSeriesVec {
        limit: Vec::with_capacity(n_ticks),
        oracle: oracle_cpu
            .iter()
            .zip(&oracle_mem)
            .map(|(&c, &m)| Res2::from_lanes([c, m]))
            .collect(),
        predictions: vec![Vec::with_capacity(n_ticks); predictors.len()],
        avg_usage: trace.avg_usage.clone(),
        mem_usage: Vec::with_capacity(n_ticks),
    });

    let mut view = MachineView::new(trace.capacity, cfg);
    let mut live: Vec<usize> = Vec::new();
    let mut next_task = 0usize;
    let traced = oc_telemetry::enabled();

    for (i, t) in trace.horizon.iter().enumerate() {
        while next_task < trace.tasks.len() && trace.tasks[next_task].spec.start <= t {
            if trace.tasks[next_task].spec.alive_at(t) {
                live.push(next_task);
            }
            next_task += 1;
        }
        live.retain(|&idx| trace.tasks[idx].spec.alive_at(t));

        let _tick_span = (traced && i % TICK_SPAN_SAMPLE == 0)
            .then(|| trace::span_ab("sim.tick", t.0, live.len() as u64));

        let mut mem_total = 0.0;
        view.observe_vec(
            t,
            live.iter().map(|&idx| {
                let task = &trace.tasks[idx];
                let usage = task.sample_at(t).map(|s| cfg.metric.of(s)).unwrap_or(0.0);
                let mem = mem_model.usage(&task.spec, t, usage);
                mem_total += mem;
                (
                    task.spec.id,
                    Res2::from_lanes([task.spec.limit, task.spec.memory_limit]),
                    Res2::from_lanes([usage, mem]),
                )
            }),
        );

        let po = Res2::from_lanes([oracle_cpu[i], oracle_mem[i]]);
        let limit = view.total_limit_vec();
        for (j, predictor) in predictors.iter().enumerate() {
            let p = predictor.predict_vec(&view);
            reports[j].record(p, po, limit);
            if let Some(series) = series.as_mut() {
                series.predictions[j].push(p);
            }
        }
        if let Some(series) = series.as_mut() {
            series.limit.push(limit);
            series.mem_usage.push(mem_total);
        }
    }

    if oc_telemetry::enabled() {
        let c = sim_counters();
        c.ticks.add(trace.horizon.len());
        c.predictor_evals
            .add(trace.horizon.len() * predictors.len() as u64);
        let m = oc_telemetry::global_metrics();
        for lane in [CPU, MEM] {
            let total: u64 = reports.iter().map(|r| r.lane(lane).violations).sum();
            m.counter(&format!("sim.violations.{}", RESOURCE_NAMES[lane]))
                .add(total);
        }
    }

    Ok(SimResultVec {
        machine: trace.machine,
        capacity: Res2::from_lanes([trace.capacity, 1.0]),
        reports,
        series,
    })
}

/// Replays one machine tick by tick: admits and retires tasks, feeds each
/// tick's observations into a fresh [`MachineView`], and hands the updated
/// view to `on_tick`. Shared by [`simulate_machine`] and
/// [`worst_violation_tick`] so both see exactly the same view evolution.
/// Callers validate `cfg` and `trace` before the oracle pass, so the
/// driver does not re-validate.
fn drive_ticks<F>(trace: &MachineTrace, cfg: &SimConfig, mut on_tick: F) -> Result<(), CoreError>
where
    F: FnMut(usize, Tick, &MachineView),
{
    let mut view = MachineView::new(trace.capacity, cfg);
    // Pre-index tasks by start tick so each tick touches only live tasks.
    // Machines host dozens of tasks at a time but thousands over a month.
    let mut live: Vec<usize> = Vec::new();
    let mut next_task = 0usize;
    // Checked once per replay: the hot loop must not pay for telemetry
    // that is switched off (the PR1 per-tick budget).
    let traced = oc_telemetry::enabled();

    for (i, t) in trace.horizon.iter().enumerate() {
        // Admit tasks starting at `t` (tasks are sorted by start tick).
        while next_task < trace.tasks.len() && trace.tasks[next_task].spec.start <= t {
            if trace.tasks[next_task].spec.alive_at(t) {
                live.push(next_task);
            }
            next_task += 1;
        }
        live.retain(|&idx| trace.tasks[idx].spec.alive_at(t));

        // Sampled per-tick timing: one span every `TICK_SPAN_SAMPLE`
        // ticks covering the view update and predictor evaluations
        // (`a` = tick, `b` = live tasks).
        let _tick_span = (traced && i % TICK_SPAN_SAMPLE == 0)
            .then(|| trace::span_ab("sim.tick", t.0, live.len() as u64));

        view.observe(
            t,
            live.iter().map(|&idx| {
                let task = &trace.tasks[idx];
                let usage = task.sample_at(t).map(|s| cfg.metric.of(s)).unwrap_or(0.0);
                (task.spec.id, task.spec.limit, usage)
            }),
        );

        on_tick(i, t, &view);
    }
    Ok(())
}

/// Convenience: the oracle series for one machine at a given horizon.
///
/// Used by oracle-horizon experiments (Figure 7(b)).
pub fn oracle_series(
    trace: &MachineTrace,
    metric: oc_trace::sample::UsageMetric,
    horizon_ticks: u64,
) -> Vec<f64> {
    machine_oracle(trace, metric, horizon_ticks)
}

/// Returns the tick with the largest oracle-minus-prediction gap for one
/// predictor, for diagnostics. `None` if the predictor never violates.
///
/// Runs the replay loop directly and keeps only the running worst, rather
/// than materializing a full [`MachineSeries`] (which clones the oracle,
/// true-peak, and average-usage series and stores every prediction) just to
/// scan it once.
pub fn worst_violation_tick(
    trace: &MachineTrace,
    cfg: &SimConfig,
    predictor: &crate::predictor::PredictorSpec,
) -> Result<Option<(Tick, f64)>, CoreError> {
    cfg.validate()?;
    trace.validate()?;
    let built = predictor.build()?;
    let oracle = machine_oracle(trace, cfg.metric, cfg.oracle_horizon_ticks);
    let mut worst: Option<(Tick, f64)> = None;
    drive_ticks(trace, cfg, |i, t, view| {
        let gap = oracle[i] - built.predict(view);
        if gap > 0.0 && worst.map(|(_, g)| gap > g).unwrap_or(true) {
            worst = Some((t, gap));
        }
    })?;
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorSpec;
    use oc_trace::cell::{CellConfig, CellPreset};
    use oc_trace::gen::WorkloadGenerator;
    use oc_trace::ids::MachineId;

    fn trace() -> MachineTrace {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.duration_ticks = 288; // 1 day.
        WorkloadGenerator::new(cell)
            .unwrap()
            .generate_machine(MachineId(0))
            .unwrap()
    }

    fn build(specs: &[PredictorSpec]) -> Vec<Box<dyn PeakPredictor>> {
        specs.iter().map(|s| s.build().unwrap()).collect()
    }

    #[test]
    fn limit_sum_is_safe_and_saves_nothing() {
        let t = trace();
        let result = simulate_machine(
            &t,
            &SimConfig::default(),
            &build(&[PredictorSpec::LimitSum]),
        )
        .unwrap();
        let r = &result.reports[0];
        assert_eq!(r.violations, 0, "limit-sum must never violate the oracle");
        assert!(r.mean_savings().abs() < 1e-12);
    }

    #[test]
    fn oracle_dominates_predictions_constraints() {
        // For every tick: oracle <= Σ limits (usage is capped per task).
        let t = trace();
        let cfg = SimConfig::default().with_series();
        let result = simulate_machine(&t, &cfg, &build(&[PredictorSpec::LimitSum])).unwrap();
        let s = result.series.unwrap();
        for i in 0..s.limit.len() {
            assert!(
                s.oracle[i] <= s.limit[i] + 1e-9,
                "tick {i}: oracle {} above limits {}",
                s.oracle[i],
                s.limit[i]
            );
        }
    }

    #[test]
    fn comparison_set_orders_as_expected() {
        // The max predictor violates at most as often as its weakest
        // component... not guaranteed per-tick, but its prediction always
        // dominates each component's, so violations are a subset.
        let t = trace();
        let specs = [
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::RcLike { percentile: 99.0 },
            PredictorSpec::paper_max(),
        ];
        let result = simulate_machine(&t, &SimConfig::default(), &build(&specs)).unwrap();
        let [n_sigma, rc, max] = &result.reports[..] else {
            panic!("3 reports")
        };
        assert!(max.violations <= n_sigma.violations);
        assert!(max.violations <= rc.violations);
        assert!(max.mean_savings() <= n_sigma.mean_savings() + 1e-12);
        assert!(max.mean_savings() <= rc.mean_savings() + 1e-12);
    }

    #[test]
    fn series_lengths_match() {
        let t = trace();
        let cfg = SimConfig::default().with_series();
        let result = simulate_machine(&t, &cfg, &build(&PredictorSpec::comparison_set())).unwrap();
        let s = result.series.unwrap();
        let n = t.horizon.len() as usize;
        assert_eq!(s.limit.len(), n);
        assert_eq!(s.oracle.len(), n);
        assert_eq!(s.predictions.len(), 4);
        for p in &s.predictions {
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let t = trace();
        let mut cfg = SimConfig::default();
        cfg.oracle_horizon_ticks = 0;
        assert!(simulate_machine(&t, &cfg, &build(&[PredictorSpec::LimitSum])).is_err());
    }

    #[test]
    fn telemetry_counters_and_sampled_spans_record_when_enabled() {
        let t = trace();
        let specs = build(&[PredictorSpec::LimitSum, PredictorSpec::NSigma { n: 5.0 }]);
        let m = oc_telemetry::global_metrics();
        let ticks_before = m.counter("sim.ticks").get();
        let evals_before = m.counter("sim.predictor_evals").get();
        oc_telemetry::trace::enable();
        let result = simulate_machine(&t, &SimConfig::default(), &specs);
        oc_telemetry::trace::disable();
        result.unwrap();
        // >= rather than ==: other tests in this process may replay
        // concurrently while tracing is enabled.
        assert!(m.counter("sim.ticks").get() >= ticks_before + 288);
        assert!(m.counter("sim.predictor_evals").get() >= evals_before + 2 * 288);
        let events = oc_telemetry::trace::drain();
        let tick_spans: Vec<_> = events.iter().filter(|e| e.name == "sim.tick").collect();
        // 288 ticks sampled every 64: ticks 0, 64, 128, 192, 256.
        assert!(tick_spans.len() >= 5, "{} sampled spans", tick_spans.len());
        assert!(tick_spans.iter().all(|e| e.b > 0), "live tasks recorded");
    }

    #[test]
    fn vector_cpu_lane_matches_scalar_sim_bitwise() {
        // The CPU lane of the vector replay must reproduce the scalar
        // replay's accounting exactly: same violation counts, bitwise
        // identical savings/severity means.
        let t = trace();
        let specs = PredictorSpec::comparison_set();
        let scalar = simulate_machine(&t, &SimConfig::default(), &build(&specs)).unwrap();
        let vector = simulate_machine_vec(
            &t,
            &SimConfig::default(),
            &build(&specs),
            &oc_trace::MemoryModel::default(),
        )
        .unwrap();
        for (s, v) in scalar.reports.iter().zip(vector.reports.iter()) {
            let v = v.lane(CPU);
            assert_eq!(s.predictor, v.predictor);
            assert_eq!(s.ticks, v.ticks);
            assert_eq!(s.violations, v.violations);
            assert_eq!(s.mean_savings().to_bits(), v.mean_savings().to_bits());
            assert_eq!(s.mean_severity().to_bits(), v.mean_severity().to_bits());
            assert_eq!(s.prediction.mean().to_bits(), v.prediction.mean().to_bits());
        }
    }

    #[test]
    fn memory_lane_is_consistent() {
        let t = trace();
        let cfg = SimConfig::default().with_series();
        let result = simulate_machine_vec(
            &t,
            &cfg,
            &build(&[PredictorSpec::LimitSum, PredictorSpec::paper_max()]),
            &oc_trace::MemoryModel::default(),
        )
        .unwrap();
        // Limit-sum never violates in any lane.
        assert_eq!(result.reports[0].lane(MEM).violations, 0);
        assert_eq!(result.reports[0].lane(CPU).violations, 0);
        let s = result.series.as_ref().unwrap();
        // The memory oracle stays below the memory limit sum.
        for (po, l) in s.oracle.iter().zip(&s.limit) {
            assert!(po.lane(MEM) <= l.lane(MEM) + 1e-9);
        }
        // The machine actually uses memory.
        assert!(s.mem_usage.iter().any(|&m| m > 0.0));
        assert_eq!(result.capacity.lane(MEM), 1.0);
    }

    #[test]
    fn worst_violation_is_found_for_aggressive_predictor() {
        let t = trace();
        let p = PredictorSpec::BorgDefault { phi: 0.01 };
        let worst = worst_violation_tick(&t, &SimConfig::default(), &p).unwrap();
        // A 1 % predictor must violate somewhere on a loaded machine.
        assert!(worst.is_some());
    }
}
