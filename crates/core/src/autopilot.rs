//! An Autopilot-style vertical limit autoscaler (companion system).
//!
//! The paper positions its machine-level overcommit as *orthogonal* to
//! Autopilot's per-task limit tuning (Section 2.2): Autopilot shrinks the
//! usage-to-limit gap of each task, yet "even a perfect system, which
//! always set tasks' resource limits equal to the tasks' peak resource
//! usage, has room to safely overcommit machines" because tasks do not
//! co-peak. This module implements the Autopilot side of that argument so
//! the claim can be tested end-to-end (the `autopilot` experiment).
//!
//! The recommender follows the published Autopilot recipe in miniature:
//! the limit tracks a high percentile of the task's recent usage with a
//! safety margin, changes at most a few times per day (limit bumps can
//! trigger evictions), never drops below current usage, and starts from
//! the user-declared limit until enough samples exist.

use crate::error::CoreError;
use oc_trace::task::TaskTrace;
use oc_trace::time::{TICKS_PER_DAY, TICKS_PER_HOUR};

/// Configuration of the limit recommender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutopilotConfig {
    /// Usage percentile the limit tracks (the paper quotes the 98th).
    pub percentile: f64,
    /// Multiplicative safety margin on top of the percentile.
    pub margin: f64,
    /// History window the percentile is computed over, in ticks.
    pub window_ticks: usize,
    /// Minimum ticks between limit changes ("no more than a few changes
    /// a day are desirable").
    pub update_interval_ticks: u64,
    /// Samples required before the first recommendation.
    pub warmup_ticks: usize,
    /// Smallest limit ever recommended.
    pub min_limit: f64,
}

impl Default for AutopilotConfig {
    /// p98 over one day, 10 % margin, at most three changes per day.
    fn default() -> Self {
        AutopilotConfig {
            percentile: 98.0,
            margin: 1.10,
            window_ticks: TICKS_PER_DAY as usize,
            update_interval_ticks: 8 * TICKS_PER_HOUR,
            warmup_ticks: (2 * TICKS_PER_HOUR) as usize,
            min_limit: 0.005,
        }
    }
}

impl AutopilotConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-domain parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |what: &str| {
            Err(CoreError::InvalidConfig {
                what: format!("autopilot: {what}"),
            })
        };
        if !(0.0 < self.percentile && self.percentile <= 100.0) {
            return fail("percentile out of (0, 100]");
        }
        if self.margin < 1.0 {
            return fail("margin must be >= 1 (limits below usage evict tasks)");
        }
        if self.window_ticks == 0 {
            return fail("window must be positive");
        }
        if self.update_interval_ticks == 0 {
            return fail("update interval must be positive");
        }
        if !(self.min_limit > 0.0) {
            return fail("min limit must be positive");
        }
        Ok(())
    }
}

/// Per-tick recommended limits for one task.
///
/// `out[i]` is the limit in force during tick `spec.start + i`. Until
/// `warmup_ticks` samples exist the user-declared limit stands; after
/// that the limit re-evaluates every `update_interval_ticks`, tracking
/// `margin · perc(usage window)` but never dropping below the tick's own
/// usage (Autopilot never throttles a running task below what it uses).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] from config validation.
pub fn recommend_limits(task: &TaskTrace, cfg: &AutopilotConfig) -> Result<Vec<f64>, CoreError> {
    cfg.validate()?;
    let usage: Vec<f64> = task.samples.iter().map(|s| s.max).collect();
    let mut out = Vec::with_capacity(usage.len());
    let mut current = task.spec.limit;
    let mut last_update: Option<u64> = None;
    for i in 0..usage.len() {
        let due = match last_update {
            None => i >= cfg.warmup_ticks,
            Some(at) => i as u64 - at >= cfg.update_interval_ticks,
        };
        if due {
            let lo = i.saturating_sub(cfg.window_ticks - 1);
            let pct = oc_stats::percentile_slice(&usage[lo..=i], cfg.percentile)?;
            current = (cfg.margin * pct).max(cfg.min_limit);
            last_update = Some(i as u64);
        }
        // Never below what the task is using right now.
        out.push(current.max(usage[i]));
    }
    Ok(out)
}

/// Mean relative slack `(limit − usage) / limit` of one task under a
/// per-tick limit series ("Autopilot reports an average usage-to-limit
/// gap, which they call the relative slack, of 23 %").
pub fn relative_slack(task: &TaskTrace, limits: &[f64]) -> f64 {
    if task.samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (s, &l) in task.samples.iter().zip(limits.iter()) {
        if l > 0.0 {
            total += (l - s.avg) / l;
        }
    }
    total / task.samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::ids::{JobId, TaskId};
    use oc_trace::sample::UsageSample;
    use oc_trace::task::{SchedulingClass, TaskSpec};
    use oc_trace::time::Tick;

    fn flat(v: f64) -> UsageSample {
        UsageSample {
            avg: v,
            p50: v,
            p90: v,
            p95: v,
            p99: v,
            max: v,
        }
    }

    fn task(usage: &[f64], declared_limit: f64) -> TaskTrace {
        let spec = TaskSpec {
            id: TaskId::new(JobId(1), 0),
            limit: declared_limit,
            memory_limit: 0.0,
            start: Tick(0),
            end: Tick(usage.len() as u64),
            class: SchedulingClass::Class2,
            priority: 200,
        };
        TaskTrace::new(spec, usage.iter().map(|&u| flat(u)).collect()).unwrap()
    }

    fn quick_cfg() -> AutopilotConfig {
        AutopilotConfig {
            warmup_ticks: 4,
            update_interval_ticks: 6,
            window_ticks: 12,
            ..AutopilotConfig::default()
        }
    }

    #[test]
    fn shrinks_oversized_limits() {
        // A task declared at 1.0 but using 0.2 gets its limit pulled near
        // margin × 0.2 after warm-up.
        let t = task(&[0.2; 40], 1.0);
        let limits = recommend_limits(&t, &quick_cfg()).unwrap();
        assert_eq!(limits[0], 1.0, "warm-up keeps the declared limit");
        let settled = limits[20];
        assert!(
            (settled - 0.22).abs() < 0.02,
            "limit should settle near margin × usage: {settled}"
        );
    }

    #[test]
    fn never_below_current_usage() {
        let usage: Vec<f64> = (0..60).map(|i| 0.1 + 0.01 * (i % 9) as f64).collect();
        let t = task(&usage, 0.5);
        let limits = recommend_limits(&t, &quick_cfg()).unwrap();
        for (i, (&l, &u)) in limits.iter().zip(usage.iter()).enumerate() {
            assert!(l + 1e-12 >= u, "tick {i}: limit {l} below usage {u}");
        }
    }

    #[test]
    fn update_cadence_is_bounded() {
        let usage: Vec<f64> = (0..100)
            .map(|i| 0.1 + 0.05 * ((i / 7) % 3) as f64)
            .collect();
        let t = task(&usage, 1.0);
        let cfg = quick_cfg();
        let limits = recommend_limits(&t, &cfg).unwrap();
        // Count distinct change points, ignoring the never-below-usage
        // floor (compare at update boundaries only).
        let mut changes = 0;
        for w in limits.windows(2) {
            if (w[0] - w[1]).abs() > 1e-12 {
                changes += 1;
            }
        }
        // At most one change per interval, plus floor adjustments; with
        // interval 6 over 100 ticks this must stay well under 100.
        assert!(changes <= 100 / 6 + 20, "too many changes: {changes}");
    }

    #[test]
    fn tracks_a_growing_task() {
        let usage: Vec<f64> = (0..80).map(|i| 0.1 + 0.005 * i as f64).collect();
        let t = task(&usage, 0.2);
        let limits = recommend_limits(&t, &quick_cfg()).unwrap();
        // By the end, the limit follows usage up even though the declared
        // limit was 0.2.
        assert!(limits[79] >= usage[79]);
        assert!(limits[79] > 0.4);
    }

    #[test]
    fn slack_of_constant_task() {
        let t = task(&[0.2; 40], 1.0);
        let limits = vec![0.25; 40];
        let slack = relative_slack(&t, &limits);
        assert!((slack - 0.2).abs() < 1e-9, "slack {slack}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = task(&[0.2; 10], 1.0);
        for bad in [
            AutopilotConfig {
                percentile: 0.0,
                ..AutopilotConfig::default()
            },
            AutopilotConfig {
                margin: 0.9,
                ..AutopilotConfig::default()
            },
            AutopilotConfig {
                window_ticks: 0,
                ..AutopilotConfig::default()
            },
            AutopilotConfig {
                min_limit: 0.0,
                ..AutopilotConfig::default()
            },
        ] {
            assert!(recommend_limits(&t, &bad).is_err(), "{bad:?}");
        }
    }
}
