//! The composite max-over-predictors policy.

use crate::predictor::PeakPredictor;
use crate::view::MachineView;

/// Predicts the pointwise maximum over a set of component predictors.
///
/// "No single predictor is best suited for all the machines at all times"
/// (Section 5.4): the N-sigma predictor wins on machines where aggregate
/// load is near-Gaussian, the RC-like predictor guards machines whose
/// aggregate variance is deceptively low (trace cell `b`). Taking the max
/// inherits the safety of whichever component is currently the more
/// conservative, at a small cost in savings. `max(N-sigma, RC-like)` is
/// the policy the paper deploys to ≈12,000 production machines.
pub struct MaxPeak {
    components: Vec<Box<dyn PeakPredictor>>,
}

impl MaxPeak {
    /// Creates the composite from its components (at least one).
    pub fn new(components: Vec<Box<dyn PeakPredictor>>) -> MaxPeak {
        MaxPeak { components }
    }

    /// The component predictors.
    pub fn components(&self) -> &[Box<dyn PeakPredictor>] {
        &self.components
    }
}

impl std::fmt::Debug for MaxPeak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaxPeak")
            .field("name", &self.name())
            .finish()
    }
}

impl PeakPredictor for MaxPeak {
    fn name(&self) -> String {
        let inner: Vec<String> = self.components.iter().map(|c| c.name()).collect();
        format!("max({})", inner.join(","))
    }

    fn predict(&self, view: &MachineView) -> f64 {
        self.components
            .iter()
            .map(|c| c.predict(view))
            .fold(0.0, f64::max)
    }

    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        self.components
            .iter()
            .map(|c| c.predict_lane(view, lane))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorSpec;
    use crate::predictors::test_util::{feed_constant, small_view};
    use crate::predictors::{BorgDefault, NSigma};

    #[test]
    fn takes_the_maximum() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.5, 0.1)], 10);
        let n_sigma = NSigma::new(5.0);
        let borg = BorgDefault::new(0.9);
        let lo = n_sigma.predict(&view); // ~0.1.
        let hi = borg.predict(&view); // 0.45.
        let max = MaxPeak::new(vec![Box::new(n_sigma), Box::new(borg)]);
        let p = max.predict(&view);
        assert_eq!(p, lo.max(hi));
        assert!((p - 0.45).abs() < 1e-12);
    }

    #[test]
    fn name_lists_components() {
        let max = PredictorSpec::paper_max().build().unwrap();
        assert_eq!(max.name(), "max(n-sigma(5),rc-like(p99))");
    }

    #[test]
    fn dominates_each_component() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.4, 0.2), (0.3, 0.1)], 10);
        let spec = PredictorSpec::paper_max();
        let max = spec.build().unwrap();
        let PredictorSpec::Max(children) = &spec else {
            unreachable!()
        };
        for child in children {
            let c = child.build().unwrap();
            assert!(max.predict(&view) >= c.predict(&view) - 1e-12);
        }
    }
}
