//! The N-sigma machine-aggregate predictor.

use crate::predictor::{clamp_prediction, clamp_prediction_lane, PeakPredictor};
use crate::view::MachineView;

/// Predicts `mean(U(J)) + N · std(U(J))` over the machine-level aggregate
/// usage window, plus the limits of tasks still in warm-up.
///
/// The key insight (Section 4): although per-task usage is neither
/// independent nor identically distributed, the Gaussian approximation of
/// the *total* machine load matches the actual distribution well. Working
/// on the aggregate makes this predictor the only built-in policy that
/// prices in statistical multiplexing — sibling tasks that never co-peak
/// produce a low aggregate variance and therefore a low, accurate
/// prediction, where the task-level RC-like predictor must assume the
/// worst.
///
/// Under the Gaussian approximation, `N = 2` tracks the 95th percentile of
/// the load distribution and `N = 3` the 99th. The paper picks `N = 5` in
/// simulation and `N = 3` in production.
#[derive(Debug, Clone, Copy)]
pub struct NSigma {
    n: f64,
}

impl NSigma {
    /// Creates the predictor with multiplier `n >= 0`.
    pub fn new(n: f64) -> NSigma {
        NSigma { n }
    }

    /// The configured multiplier.
    pub fn n(&self) -> f64 {
        self.n
    }
}

impl PeakPredictor for NSigma {
    fn name(&self) -> String {
        format!("n-sigma({})", self.n)
    }

    fn predict(&self, view: &MachineView) -> f64 {
        let w = view.warm_aggregate();
        let raw = if w.is_empty() {
            // Nothing observed at all: be conservative.
            view.total_limit()
        } else {
            w.mean() + self.n * w.population_std() + view.cold_limit_sum()
        };
        clamp_prediction(raw, view)
    }

    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        let w = view.warm_aggregate_lane(lane);
        let raw = if w.is_empty() {
            view.total_limit_lane(lane)
        } else {
            w.mean() + self.n * w.population_std() + view.cold_limit_sum_lane(lane)
        };
        clamp_prediction_lane(raw, view, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::test_util::{feed_constant, small_view};
    use oc_trace::ids::{JobId, TaskId};
    use oc_trace::time::Tick;

    #[test]
    fn constant_usage_predicts_mean() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.4, 0.1)], 10);
        // Aggregate window (capacity 8) once warm holds 0.1s, but the first
        // two cold ticks recorded 0.0 and have been evicted by tick 10.
        let p = NSigma::new(5.0).predict(&view);
        assert!((p - 0.1).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn larger_n_predicts_more() {
        let (mut view, _) = small_view();
        let id = TaskId::new(JobId(1), 0);
        for (t, u) in [0.1, 0.3, 0.1, 0.3, 0.1, 0.3, 0.1, 0.3].iter().enumerate() {
            view.observe(Tick(t as u64), [(id, 1.0, *u)]);
        }
        let p2 = NSigma::new(2.0).predict(&view);
        let p5 = NSigma::new(5.0).predict(&view);
        assert!(p5 > p2, "5-sigma {p5} should exceed 2-sigma {p2}");
    }

    #[test]
    fn empty_view_is_conservative() {
        let (view, _) = small_view();
        assert_eq!(NSigma::new(3.0).predict(&view), 0.0); // Σ limits = 0.
    }

    #[test]
    fn cold_tasks_add_their_limits() {
        let (mut view, _) = small_view();
        // 1 tick => task is cold; aggregate window holds one 0.0 sample.
        feed_constant(&mut view, &[(0.4, 0.1)], 1);
        let p = NSigma::new(5.0).predict(&view);
        assert!((p - 0.4).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn capped_at_total_limit() {
        let (mut view, _) = small_view();
        let id = TaskId::new(JobId(1), 0);
        // Wildly varying usage pushes mean + 5σ above the limit.
        for (t, u) in [0.0, 0.5, 0.0, 0.5, 0.0, 0.5, 0.0, 0.5].iter().enumerate() {
            view.observe(Tick(t as u64), [(id, 0.5, *u)]);
        }
        let p = NSigma::new(10.0).predict(&view);
        assert!(p <= view.total_limit() + 1e-12);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_benefits_from_multiplexing() {
        // Two anti-correlated tasks: aggregate variance ~0, so N-sigma on
        // the aggregate predicts far less than per-task worst cases would.
        let (mut view, _) = small_view();
        let a = TaskId::new(JobId(1), 0);
        let b = TaskId::new(JobId(2), 0);
        // 16 ticks: the cold-era zero entries age out of the 8-slot window.
        for t in 0..16u64 {
            let (ua, ub) = if t % 2 == 0 { (0.4, 0.1) } else { (0.1, 0.4) };
            view.observe(Tick(t), [(a, 0.5, ua), (b, 0.5, ub)]);
        }
        let p = NSigma::new(5.0).predict(&view);
        // Aggregate is constant 0.5 => prediction ~0.5, far below Σ L = 1.0.
        assert!((p - 0.5).abs() < 1e-9, "got {p}");
    }
}
