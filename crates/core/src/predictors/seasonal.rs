//! A seasonality-aware peak predictor (extension beyond the paper).
//!
//! The paper's node-local predictors see only a `max_num_samples` window
//! (10 h by default) — less than one diurnal cycle. During the daily
//! trough both N-sigma and RC-like forget the peak that reliably returns
//! a few hours later, which is exactly when an admission-gating scheduler
//! overfills the machine. The paper lists "data-driven predictors" as
//! future work; this predictor is the smallest such step: it maintains a
//! per-slot-of-day exponentially decayed peak profile of the machine
//! aggregate and predicts the maximum profile value over the slots the
//! oracle horizon covers.
//!
//! State is O(slots) per machine — still comfortably within the paper's
//! lightweight-node-agent budget.

use crate::predictor::{clamp_prediction, PeakPredictor};
use crate::view::MachineView;
use oc_trace::time::TICKS_PER_DAY;
use std::sync::Mutex;

/// Per-slot-of-day decayed peak profile over the machine aggregate.
///
/// Unlike the built-in policies this predictor is stateful: it folds each
/// observed tick into its profile. State lives behind a mutex so the
/// predictor still satisfies the `Send + Sync` bound the parallel runner
/// requires (each machine owns its predictor, so the lock is uncontended).
#[derive(Debug)]
pub struct Seasonal {
    /// Number of day slots (e.g. 24 → hourly).
    slots: usize,
    /// Per-update decay toward the running maximum in `[0, 1)`; higher
    /// forgets old peaks faster.
    decay: f64,
    /// Horizon in ticks the prediction must cover.
    horizon_ticks: u64,
    /// Interior state: per-slot decayed peaks and the last tick folded.
    state: Mutex<SeasonalState>,
}

#[derive(Debug, Default)]
struct SeasonalState {
    profile: Vec<f64>,
    /// Tick of the last folded observation (`u64::MAX` = none yet).
    last_tick: Option<u64>,
}

impl Seasonal {
    /// Creates the predictor with `slots` day slots, per-observation
    /// `decay`, and a forecast coverage of `horizon_ticks`.
    pub fn new(slots: usize, decay: f64, horizon_ticks: u64) -> Seasonal {
        Seasonal {
            slots: slots.max(1),
            decay: decay.clamp(0.0, 1.0),
            horizon_ticks: horizon_ticks.max(1),
            state: Mutex::new(SeasonalState::default()),
        }
    }

    /// Slot index for a tick.
    fn slot_of(&self, tick_index: u64) -> usize {
        let ticks_per_slot = (TICKS_PER_DAY as usize / self.slots).max(1) as u64;
        ((tick_index % TICKS_PER_DAY) / ticks_per_slot) as usize % self.slots
    }
}

impl PeakPredictor for Seasonal {
    fn name(&self) -> String {
        format!("seasonal({}x,d={})", self.slots, self.decay)
    }

    fn predict(&self, view: &MachineView) -> f64 {
        let mut state = self.state.lock().expect("seasonal state lock");
        if state.profile.len() != self.slots {
            state.profile = vec![0.0; self.slots];
            state.last_tick = None;
        }
        // Fold the newest aggregate observation into its slot, once per
        // tick (predict may be called several times between observations,
        // e.g. inside a max composite).
        let now = view.now().index();
        if !view.warm_aggregate().is_empty() && state.last_tick != Some(now) {
            let slot = self.slot_of(now);
            let x = view.warm_aggregate().last().unwrap_or(0.0);
            let current = state.profile[slot];
            state.profile[slot] = if x >= current {
                x
            } else {
                current * (1.0 - self.decay) + x * self.decay
            };
            state.last_tick = Some(now);
        }

        // Max profile over the slots the horizon covers, starting now.
        let ticks_per_slot = (TICKS_PER_DAY as usize / self.slots).max(1) as u64;
        let covered = (self.horizon_ticks / ticks_per_slot + 2).min(self.slots as u64);
        let start = self.slot_of(view.now().index());
        let mut peak = 0.0f64;
        for k in 0..covered {
            peak = peak.max(state.profile[(start + k as usize) % self.slots]);
        }
        clamp_prediction(peak + view.cold_limit_sum(), view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use oc_trace::ids::{JobId, TaskId};
    use oc_trace::time::Tick;

    fn view() -> MachineView {
        let mut cfg = SimConfig::default();
        cfg.min_num_samples = 2;
        cfg.max_num_samples = 8;
        MachineView::new(1.0, &cfg)
    }

    /// Feeds a square-wave day: high usage in slots 0..half, low after.
    fn feed_square_days(view: &mut MachineView, p: &Seasonal, days: u64, hi: f64, lo: f64) {
        let id = TaskId::new(JobId(1), 0);
        for t in 0..days * TICKS_PER_DAY {
            let day_frac = (t % TICKS_PER_DAY) as f64 / TICKS_PER_DAY as f64;
            let u = if day_frac < 0.5 { hi } else { lo };
            view.observe(Tick(t), [(id, 1.0, u)]);
            // Predict every tick so the profile folds every observation.
            let _ = p.predict(view);
        }
    }

    #[test]
    fn remembers_the_daily_peak_through_the_trough() {
        let p = Seasonal::new(24, 0.1, 288);
        let mut v = view();
        feed_square_days(&mut v, &p, 2, 0.8, 0.2);
        // It is now the trough (end of day 2); a 24h-horizon prediction
        // must still carry the 0.8 peak.
        let pred = p.predict(&v);
        assert!(pred >= 0.75, "forgot the daily peak: {pred}");
    }

    #[test]
    fn short_horizon_in_trough_predicts_trough() {
        // Covering only ~2 hours ahead from the middle of the trough, the
        // profile max over those slots is the trough level.
        let p = Seasonal::new(24, 0.1, 12);
        let mut v = view();
        // End feeding mid-trough: 1.75 days.
        let id = TaskId::new(JobId(1), 0);
        for t in 0..(TICKS_PER_DAY * 7 / 4) {
            let day_frac = (t % TICKS_PER_DAY) as f64 / TICKS_PER_DAY as f64;
            let u = if day_frac < 0.5 { 0.8 } else { 0.2 };
            v.observe(Tick(t), [(id, 1.0, u)]);
            let _ = p.predict(&v);
        }
        let pred = p.predict(&v);
        assert!(
            pred < 0.5,
            "2h horizon mid-trough should not carry the peak: {pred}"
        );
    }

    #[test]
    fn decays_stale_peaks() {
        let p = Seasonal::new(24, 0.2, 288);
        let mut v = view();
        // One hot day followed by five calm days.
        feed_square_days(&mut v, &p, 1, 0.9, 0.9);
        feed_square_days(&mut v, &p, 5, 0.1, 0.1);
        let pred = p.predict(&v);
        assert!(pred < 0.4, "stale peak never decayed: {pred}");
    }

    #[test]
    fn clamped_and_cold_aware() {
        let p = Seasonal::new(24, 0.1, 288);
        let v = view();
        assert_eq!(p.predict(&v), 0.0); // Empty machine.
        let mut v = view();
        let id = TaskId::new(JobId(1), 0);
        v.observe(Tick(0), [(id, 0.4, 0.1)]);
        // One sample: task cold, prediction includes its limit.
        let pred = p.predict(&v);
        assert!((pred - 0.4).abs() < 1e-9, "cold limit missing: {pred}");
    }
}
