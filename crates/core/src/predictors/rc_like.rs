//! Resource-Central-style per-task percentile predictor.

use crate::predictor::{clamp_prediction, clamp_prediction_lane, PeakPredictor};
use crate::view::MachineView;

/// Predicts the sum of a per-task usage percentile:
/// `P(J, t) = Σᵢ percₖ(Uᵢ) + Σ_cold Lᵢ`.
///
/// Modeled on Microsoft Resource Central's overcommit policy, which sums a
/// percentile of each VM's historical usage. Because percentiles are taken
/// *per task* before summing, this predictor inherits the pooling-effect
/// blind spot of all task-level approaches: tasks do not co-peak, so the
/// sum of high per-task percentiles overestimates the machine peak — yet
/// the usage variability of individual tasks still produces violations
/// when `k` is low (the Figure 9 trade-off).
///
/// Tasks still in warm-up contribute their limit instead of a percentile.
#[derive(Debug, Clone, Copy)]
pub struct RcLike {
    percentile: f64,
}

impl RcLike {
    /// Creates the predictor using the `percentile`-th per-task percentile
    /// (`(0, 100]`).
    pub fn new(percentile: f64) -> RcLike {
        RcLike { percentile }
    }

    /// The configured percentile.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }
}

impl PeakPredictor for RcLike {
    fn name(&self) -> String {
        format!("rc-like(p{})", self.percentile)
    }

    fn predict(&self, view: &MachineView) -> f64 {
        let mut total = view.cold_limit_sum();
        for (_, task) in view.warm_tasks() {
            let pct = task
                .window()
                .percentile(self.percentile)
                // A warm task always has samples; treat a failed percentile
                // (empty window) as the conservative limit.
                .unwrap_or(task.limit());
            total += pct.min(task.limit());
        }
        clamp_prediction(total, view)
    }

    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        if lane == oc_stats::resource::CPU {
            return self.predict(view);
        }
        let mut total = view.cold_limit_sum_lane(lane);
        for (_, task) in view.warm_tasks() {
            let limit = task.limit_lane(lane);
            // The memory lane tracks the windowed *peak*, not a full
            // percentile index: memory is incompressible, so the warm
            // contribution must cover the recent peak — and peak-only
            // tracking is what keeps the second lane's observe cost O(1)
            // (see `TaskView::mem_peak`). A lane that was never observed
            // (scalar-only task) falls back to its limit (0.0 here).
            let peak = task.mem_peak().unwrap_or(limit);
            total += peak.min(limit);
        }
        clamp_prediction_lane(total, view, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::test_util::{feed_constant, small_view};
    use oc_trace::ids::{JobId, TaskId};
    use oc_trace::time::Tick;

    #[test]
    fn cold_tasks_contribute_limits() {
        let (mut view, _) = small_view();
        // One tick: both tasks cold.
        feed_constant(&mut view, &[(0.4, 0.1), (0.3, 0.2)], 1);
        let p = RcLike::new(95.0);
        assert!((p.predict(&view) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn warm_tasks_contribute_percentiles() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.4, 0.1)], 6);
        // Constant usage: every percentile is 0.1.
        let p = RcLike::new(99.0);
        assert!((p.predict(&view) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_ordering() {
        // Varying usage: a higher percentile predicts at least as much.
        let (mut view, _) = small_view();
        let id = TaskId::new(JobId(1), 0);
        for (t, u) in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8].iter().enumerate() {
            view.observe(Tick(t as u64), [(id, 1.0, *u)]);
        }
        let lo = RcLike::new(50.0).predict(&view);
        let hi = RcLike::new(99.0).predict(&view);
        assert!(hi > lo, "p99 {hi} should exceed p50 {lo}");
    }

    #[test]
    fn prediction_capped_at_total_limit() {
        let (mut view, _) = small_view();
        // Usage equal to limit: percentile = limit, sum = total limit.
        feed_constant(&mut view, &[(0.4, 0.4), (0.3, 0.3)], 6);
        let p = RcLike::new(100.0).predict(&view);
        assert!(p <= view.total_limit() + 1e-12);
    }

    #[test]
    fn mixed_warm_and_cold() {
        let (mut view, _) = small_view();
        let warm = TaskId::new(JobId(1), 0);
        let cold = TaskId::new(JobId(2), 0);
        for t in 0..5u64 {
            if t < 4 {
                view.observe(Tick(t), [(warm, 0.5, 0.2)]);
            } else {
                view.observe(Tick(t), [(warm, 0.5, 0.2), (cold, 0.3, 0.25)]);
            }
        }
        // warm task contributes p95(0.2..) = 0.2; cold contributes 0.3.
        let p = RcLike::new(95.0).predict(&view);
        assert!((p - 0.5).abs() < 1e-9, "got {p}");
    }
}
