//! Borg's static, limit-based default overcommit policy.

use crate::predictor::PeakPredictor;
use crate::view::MachineView;

/// Predicts a fixed fraction of the sum of task limits: `φ · Σ Lᵢ`.
///
/// This mirrors the policy Borg has used since ~2016 and that many other
/// platforms adopt for its simplicity (Mesos, OpenShift, vSphere, GCE
/// sole-tenant overcommit). `φ = 1.0` disables overcommit; the paper
/// derives `φ = 0.9` from the observation that the 95th-percentile
/// usage-to-limit ratio stays below 0.9 in every trace cell (Figure 7(c)).
///
/// The policy ignores the workload entirely — the same fraction applies to
/// a calm machine and a bursty one — which is exactly the weakness the
/// usage-based predictors exploit.
#[derive(Debug, Clone, Copy)]
pub struct BorgDefault {
    phi: f64,
}

impl BorgDefault {
    /// Creates the policy with overcommit fraction `phi` in `(0, 1]`.
    pub fn new(phi: f64) -> BorgDefault {
        BorgDefault { phi }
    }

    /// The configured fraction.
    pub fn phi(&self) -> f64 {
        self.phi
    }
}

impl PeakPredictor for BorgDefault {
    fn name(&self) -> String {
        format!("borg-default({})", self.phi)
    }

    fn predict(&self, view: &MachineView) -> f64 {
        self.phi * view.total_limit()
    }

    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        self.phi * view.total_limit_lane(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::test_util::{feed_constant, small_view};

    #[test]
    fn scales_limit_sum() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.5, 0.1), (0.5, 0.4)], 5);
        let p = BorgDefault::new(0.9);
        assert!((p.predict(&view) - 0.9).abs() < 1e-12);
        assert_eq!(p.phi(), 0.9);
    }

    #[test]
    fn phi_one_is_no_overcommit() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.5, 0.1)], 5);
        assert!((BorgDefault::new(1.0).predict(&view) - view.total_limit()).abs() < 1e-12);
    }

    #[test]
    fn ignores_usage_entirely() {
        let (mut calm, _) = small_view();
        feed_constant(&mut calm, &[(0.5, 0.01)], 5);
        let (mut busy, _) = small_view();
        feed_constant(&mut busy, &[(0.5, 0.49)], 5);
        let p = BorgDefault::new(0.9);
        assert_eq!(p.predict(&calm), p.predict(&busy));
    }
}
