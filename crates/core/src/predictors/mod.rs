//! The paper's practical peak predictors.

mod borg_default;
mod limit_sum;
mod max_peak;
mod n_sigma;
mod rc_like;
mod seasonal;

pub use borg_default::BorgDefault;
pub use limit_sum::LimitSum;
pub use max_peak::MaxPeak;
pub use n_sigma::NSigma;
pub use rc_like::RcLike;
pub use seasonal::Seasonal;

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared fixtures for predictor tests.

    use crate::config::SimConfig;
    use crate::view::MachineView;
    use oc_trace::ids::{JobId, TaskId};
    use oc_trace::time::Tick;

    /// A view with `min_num_samples = 3`, `max_num_samples = 8`.
    pub fn small_view() -> (MachineView, SimConfig) {
        let mut cfg = SimConfig::default();
        cfg.min_num_samples = 3;
        cfg.max_num_samples = 8;
        (MachineView::new(1.0, &cfg), cfg)
    }

    /// Feeds `ticks` observations of constant usage for tasks
    /// `(limit, usage)` so every task ends warm (if `ticks >= 3`).
    pub fn feed_constant(view: &mut MachineView, tasks: &[(f64, f64)], ticks: u64) {
        for t in 0..ticks {
            view.observe(
                Tick(t),
                tasks.iter().enumerate().map(|(i, &(limit, usage))| {
                    (TaskId::new(JobId(i as u64 + 1), 0), limit, usage)
                }),
            );
        }
    }
}
