//! The conservative no-overcommit baseline.

use crate::predictor::PeakPredictor;
use crate::view::MachineView;

/// Predicts the sum of all task limits.
///
/// This is "the most conservative peak predictor, which yields the most
/// unused capacity and never overcommits" (Section 3.2): since per-task
/// usage is capped at the limit, total usage can never exceed `Σ Lᵢ`, so
/// this predictor has zero violations and zero savings by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LimitSum;

impl PeakPredictor for LimitSum {
    fn name(&self) -> String {
        "limit-sum".into()
    }

    fn predict(&self, view: &MachineView) -> f64 {
        view.total_limit()
    }

    fn predict_lane(&self, view: &MachineView, lane: usize) -> f64 {
        view.total_limit_lane(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::test_util::{feed_constant, small_view};

    #[test]
    fn predicts_sum_of_limits() {
        let (mut view, _) = small_view();
        feed_constant(&mut view, &[(0.4, 0.1), (0.3, 0.05)], 5);
        assert!((LimitSum.predict(&view) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_machine_predicts_zero() {
        let (view, _) = small_view();
        assert_eq!(LimitSum.predict(&view), 0.0);
    }
}
