//! Evaluation metrics (Section 5.1.3 of the paper).
//!
//! Three metrics judge an overcommit policy against the peak oracle:
//!
//! * **Violation rate** — the fraction of ticks where the prediction is
//!   below the oracle (`P < PO`). The benefit-side proxy for risk; it is
//!   what correlates with tail CPU scheduling latency (Section 3.3).
//! * **Violation severity** — `max(0, PO − P) / PO` per tick; how *far*
//!   below the oracle a violating prediction is.
//! * **Savings ratio** — `(L − P) / L` per tick, where `L = Σ limits`: the
//!   additional usable capacity the policy creates relative to
//!   no-overcommit.
//!
//! Metrics are accumulated per machine over the simulated period; cells
//! aggregate machines.

use oc_stats::resource::{Res2, NUM_RESOURCES, RESOURCE_NAMES};
use oc_stats::Welford;
use oc_trace::ids::MachineId;

/// Tolerance for floating-point comparisons between predictions and oracle
/// values. A prediction within this distance of the oracle is not a
/// violation (it would be a tie in exact arithmetic).
pub const VIOLATION_EPS: f64 = 1e-9;

/// Per-machine, per-predictor metric summary.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// The machine the metrics describe.
    pub machine: MachineId,
    /// Display name of the predictor.
    pub predictor: String,
    /// Ticks simulated.
    pub ticks: u64,
    /// Ticks where the prediction violated the oracle.
    pub violations: u64,
    /// Severity values over all ticks (zero when not violating).
    pub severity: Welford,
    /// Savings ratio over all ticks.
    pub savings: Welford,
    /// Raw predictions.
    pub prediction: Welford,
    /// Oracle values.
    pub oracle: Welford,
    /// Σ limits per tick.
    pub limit: Welford,
}

impl MachineReport {
    /// Creates an empty report.
    pub fn new(machine: MachineId, predictor: String) -> MachineReport {
        MachineReport {
            machine,
            predictor,
            ticks: 0,
            violations: 0,
            severity: Welford::new(),
            savings: Welford::new(),
            prediction: Welford::new(),
            oracle: Welford::new(),
            limit: Welford::new(),
        }
    }

    /// Accumulates one tick: prediction `p`, oracle `po`, total limit `l`.
    pub fn record(&mut self, p: f64, po: f64, l: f64) {
        self.ticks += 1;
        let violating = p + VIOLATION_EPS < po;
        if violating {
            self.violations += 1;
        }
        let severity = if violating && po > 0.0 {
            ((po - p) / po).max(0.0)
        } else {
            0.0
        };
        self.severity.push(severity);
        let savings = if l > 0.0 { (l - p) / l } else { 0.0 };
        self.savings.push(savings);
        self.prediction.push(p);
        self.oracle.push(po);
        self.limit.push(l);
    }

    /// Fraction of ticks with an oracle violation.
    pub fn violation_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.violations as f64 / self.ticks as f64
        }
    }

    /// Mean violation severity over the whole period (zeros included).
    pub fn mean_severity(&self) -> f64 {
        self.severity.mean()
    }

    /// Largest single-tick severity.
    pub fn max_severity(&self) -> f64 {
        if self.severity.is_empty() {
            0.0
        } else {
            self.severity.max()
        }
    }

    /// Mean savings ratio over the period.
    pub fn mean_savings(&self) -> f64 {
        self.savings.mean()
    }

    /// Whether the policy ever overcommitted (predicted below Σ limits).
    pub fn ever_overcommitted(&self) -> bool {
        self.savings.max() > VIOLATION_EPS
    }
}

/// Per-machine, per-predictor metric summaries for every resource lane.
///
/// Lane 0 (CPU) of a vector replay is accounted with exactly the same
/// [`MachineReport::record`] calls as a scalar replay, so its counters and
/// Welford moments are bit-identical to the scalar path.
#[derive(Debug, Clone)]
pub struct LaneReports {
    /// One report per resource lane, indexed by
    /// [`oc_stats::resource::CPU`] / [`oc_stats::resource::MEM`].
    pub lanes: [MachineReport; NUM_RESOURCES],
}

impl LaneReports {
    /// Creates empty per-lane reports for one machine and predictor.
    pub fn new(machine: MachineId, predictor: String) -> LaneReports {
        LaneReports {
            lanes: std::array::from_fn(|_| MachineReport::new(machine, predictor.clone())),
        }
    }

    /// Accumulates one tick of per-lane values.
    pub fn record(&mut self, p: Res2, po: Res2, l: Res2) {
        for (lane, report) in self.lanes.iter_mut().enumerate() {
            report.record(p.lane(lane), po.lane(lane), l.lane(lane));
        }
    }

    /// The report of one lane.
    pub fn lane(&self, lane: usize) -> &MachineReport {
        &self.lanes[lane]
    }

    /// Worst-lane violation rate: the rate of ticks violating in *any*
    /// lane is bounded below by each lane's own rate; this returns the
    /// largest per-lane rate (the gating lane).
    pub fn worst_violation_rate(&self) -> f64 {
        self.lanes
            .iter()
            .map(MachineReport::violation_rate)
            .fold(0.0, f64::max)
    }

    /// Per-lane violation counts paired with the lane names
    /// (`["cpu", "mem"]`), for metric emission.
    pub fn violations_by_lane(&self) -> [(&'static str, u64); NUM_RESOURCES] {
        std::array::from_fn(|i| (RESOURCE_NAMES[i], self.lanes[i].violations))
    }
}

/// Full per-tick series retained when `record_series` is on.
#[derive(Debug, Clone)]
pub struct MachineSeries {
    /// Σ limits per tick.
    pub limit: Vec<f64>,
    /// Peak-oracle value per tick.
    pub oracle: Vec<f64>,
    /// Ground-truth within-tick machine peak.
    pub true_peak: Vec<f64>,
    /// Average machine usage per tick.
    pub avg_usage: Vec<f64>,
    /// Predictions per predictor (outer index = predictor).
    pub predictions: Vec<Vec<f64>>,
}

/// One machine's simulation output: one report per predictor, plus the
/// optional per-tick series.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The simulated machine.
    pub machine: MachineId,
    /// Machine capacity (for utilization normalization downstream).
    pub capacity: f64,
    /// One report per configured predictor, in configuration order.
    pub reports: Vec<MachineReport>,
    /// Per-tick series when requested.
    pub series: Option<MachineSeries>,
}

/// Full per-lane per-tick series retained by the vector replay when
/// `record_series` is on.
#[derive(Debug, Clone)]
pub struct MachineSeriesVec {
    /// Per-lane Σ limits per tick.
    pub limit: Vec<Res2>,
    /// Per-lane peak-oracle value per tick.
    pub oracle: Vec<Res2>,
    /// Per-lane predictions per predictor (outer index = predictor).
    pub predictions: Vec<Vec<Res2>>,
    /// Average machine CPU usage per tick (trace ground truth; the input
    /// of node power models).
    pub avg_usage: Vec<f64>,
    /// Total derived memory usage per tick.
    pub mem_usage: Vec<f64>,
}

/// One machine's vector-simulation output: per-lane reports per predictor.
#[derive(Debug, Clone)]
pub struct SimResultVec {
    /// The simulated machine.
    pub machine: MachineId,
    /// Per-lane machine capacity.
    pub capacity: Res2,
    /// Per-lane reports per configured predictor, in configuration order.
    pub reports: Vec<LaneReports>,
    /// Per-lane per-tick series when requested.
    pub series: Option<MachineSeriesVec>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_accounting() {
        let mut r = MachineReport::new(MachineId(0), "test".into());
        r.record(0.5, 0.8, 1.0); // Violation, severity 0.375, savings 0.5.
        r.record(0.9, 0.8, 1.0); // Safe.
        assert_eq!(r.ticks, 2);
        assert_eq!(r.violations, 1);
        assert!((r.violation_rate() - 0.5).abs() < 1e-12);
        assert!((r.mean_severity() - 0.1875).abs() < 1e-12);
        assert!((r.max_severity() - 0.375).abs() < 1e-12);
        assert!((r.mean_savings() - 0.3).abs() < 1e-12);
        assert!(r.ever_overcommitted());
    }

    #[test]
    fn exact_tie_is_not_a_violation() {
        let mut r = MachineReport::new(MachineId(0), "test".into());
        r.record(0.8, 0.8, 1.0);
        assert_eq!(r.violations, 0);
        assert_eq!(r.mean_severity(), 0.0);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let r = MachineReport::new(MachineId(0), "test".into());
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.mean_severity(), 0.0);
        assert_eq!(r.max_severity(), 0.0);
        assert!(!r.ever_overcommitted());
    }

    #[test]
    fn zero_limit_yields_zero_savings() {
        let mut r = MachineReport::new(MachineId(0), "test".into());
        r.record(0.0, 0.0, 0.0);
        assert_eq!(r.mean_savings(), 0.0);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn limit_sum_never_violates() {
        // The conservative predictor P = L >= PO always.
        let mut r = MachineReport::new(MachineId(0), "limit-sum".into());
        for (po, l) in [(0.5, 1.0), (0.9, 1.0), (1.0, 1.0)] {
            r.record(l, po, l);
        }
        assert_eq!(r.violations, 0);
        assert_eq!(r.mean_savings(), 0.0);
    }
}
