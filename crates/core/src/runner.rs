//! Parallel cell-level simulation.
//!
//! Machines are simulated independently — exactly the property the paper's
//! Beam pipeline exploits — so the runner fans machine indices out to
//! worker threads via an atomic work counter. Each worker writes its result
//! into the pre-allocated slot for its machine index, so the output is
//! ordered by construction and never needs a collect-and-sort pass. On the
//! first error a shared cancel flag stops the remaining workers from
//! claiming new machines. Two modes:
//!
//! * [`run_cell`] — simulate already-materialized [`MachineTrace`]s.
//! * [`run_cell_streaming`] — generate each machine on the fly from a
//!   [`WorkloadGenerator`], simulate it, and drop the trace, keeping only
//!   reports (and optional series). This keeps month-long cells within a
//!   workstation's memory.

use crate::config::SimConfig;
use crate::error::CoreError;
use crate::metrics::{MachineReport, SimResult};
use crate::predictor::{PeakPredictor, PredictorSpec};
use crate::sim::simulate_machine;
use oc_trace::gen::WorkloadGenerator;
use oc_trace::ids::{CellId, MachineId};
use oc_trace::MachineTrace;

/// Aggregated output of one cell simulation.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The simulated cell.
    pub cell: CellId,
    /// Predictor names, in configuration order.
    pub predictors: Vec<String>,
    /// Per-machine results, sorted by machine id.
    pub results: Vec<SimResult>,
}

impl CellRun {
    /// Per-machine reports for predictor `idx`.
    pub fn reports(&self, idx: usize) -> impl Iterator<Item = &MachineReport> {
        self.results.iter().map(move |r| &r.reports[idx])
    }

    /// Per-machine violation rates for predictor `idx` (one per machine).
    pub fn violation_rates(&self, idx: usize) -> Vec<f64> {
        self.reports(idx)
            .map(MachineReport::violation_rate)
            .collect()
    }

    /// Per-machine mean severities for predictor `idx`.
    pub fn mean_severities(&self, idx: usize) -> Vec<f64> {
        self.reports(idx)
            .map(MachineReport::mean_severity)
            .collect()
    }

    /// Per-machine mean savings ratios for predictor `idx`.
    pub fn machine_savings(&self, idx: usize) -> Vec<f64> {
        self.reports(idx).map(MachineReport::mean_savings).collect()
    }

    /// Cell-level savings series: per tick, `(ΣL − ΣP) / ΣL` summed over
    /// machines. Requires `record_series`; returns `None` otherwise.
    pub fn cell_savings_series(&self, idx: usize) -> Option<Vec<f64>> {
        let n = self
            .results
            .first()
            .and_then(|r| r.series.as_ref())
            .map(|s| s.limit.len())?;
        let mut limit = vec![0.0; n];
        let mut pred = vec![0.0; n];
        for r in &self.results {
            let s = r.series.as_ref()?;
            for i in 0..n {
                limit[i] += s.limit[i];
                pred[i] += s.predictions[idx][i];
            }
        }
        Some(
            limit
                .iter()
                .zip(pred.iter())
                .map(|(&l, &p)| if l > 0.0 { (l - p) / l } else { 0.0 })
                .collect(),
        )
    }

    /// Cell-level utilization series: per tick, `Σ usage / Σ capacity`.
    /// Requires `record_series`.
    pub fn cell_utilization_series(&self) -> Option<Vec<f64>> {
        let n = self
            .results
            .first()
            .and_then(|r| r.series.as_ref())
            .map(|s| s.avg_usage.len())?;
        let mut usage = vec![0.0; n];
        let mut capacity = 0.0;
        for r in &self.results {
            let s = r.series.as_ref()?;
            capacity += r.capacity;
            for i in 0..n {
                usage[i] += s.avg_usage[i];
            }
        }
        Some(usage.iter().map(|&u| u / capacity).collect())
    }

    /// Index of a predictor by name.
    pub fn predictor_index(&self, name: &str) -> Option<usize> {
        self.predictors.iter().position(|p| p == name)
    }
}

/// Builds one predictor set from specs.
fn build_predictors(specs: &[PredictorSpec]) -> Result<Vec<Box<dyn PeakPredictor>>, CoreError> {
    specs.iter().map(PredictorSpec::build).collect()
}

/// Simulates materialized machines in parallel.
///
/// # Errors
///
/// Returns the first configuration, build, or per-machine simulation error.
pub fn run_cell(
    cell: CellId,
    machines: &[MachineTrace],
    cfg: &SimConfig,
    specs: &[PredictorSpec],
    threads: usize,
) -> Result<CellRun, CoreError> {
    cfg.validate()?;
    for s in specs {
        s.validate()?;
    }
    let results = parallel_map(machines.len(), threads, |idx| {
        let predictors = build_predictors(specs)?;
        simulate_machine(&machines[idx], cfg, &predictors)
    })?;
    Ok(finish(cell, specs, results))
}

/// Generates and simulates a whole cell without materializing it.
///
/// # Errors
///
/// Returns the first generation or simulation error.
pub fn run_cell_streaming(
    gen: &WorkloadGenerator,
    cfg: &SimConfig,
    specs: &[PredictorSpec],
    threads: usize,
) -> Result<CellRun, CoreError> {
    cfg.validate()?;
    for s in specs {
        s.validate()?;
    }
    let n = gen.config().machines;
    let results = parallel_map(n, threads, |idx| {
        let predictors = build_predictors(specs)?;
        let trace = gen.generate_machine(MachineId(idx as u32))?;
        simulate_machine(&trace, cfg, &predictors)
    })?;
    Ok(finish(gen.config().id.clone(), specs, results))
}

/// Fans indices `0..n` out to `threads` workers.
///
/// Workers claim indices from an atomic counter and write each result
/// directly into its index slot, so results come back in machine order
/// without a sort. A shared cancel flag is raised on the first error; other
/// workers finish their current machine but claim no more, and the first
/// error (by claim order, not completion order — `error` is only written by
/// whichever worker raises the flag) is returned.
fn parallel_map<F>(n: usize, threads: usize, f: F) -> Result<Vec<SimResult>, CoreError>
where
    F: Fn(usize) -> Result<SimResult, CoreError> + Send + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let error: Mutex<Option<CoreError>> = Mutex::new(None);
    let mut slots: Vec<Option<SimResult>> = Vec::new();
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancel.load(Ordering::Relaxed) {
                    return;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    return;
                }
                match f(idx) {
                    Ok(result) => {
                        slots.lock().expect("slots lock")[idx] = Some(result);
                    }
                    Err(e) => {
                        if !cancel.swap(true, Ordering::Relaxed) {
                            *error.lock().expect("error lock") = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("error lock") {
        return Err(e);
    }
    let results: Vec<SimResult> = slots
        .into_inner()
        .expect("slots lock")
        .into_iter()
        .map(|s| s.expect("no error raised, so every slot was filled"))
        .collect();
    Ok(results)
}

/// Wraps sorted results into a [`CellRun`].
fn finish(cell: CellId, specs: &[PredictorSpec], results: Vec<SimResult>) -> CellRun {
    CellRun {
        cell,
        predictors: specs.iter().map(PredictorSpec::name).collect(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::{CellConfig, CellPreset};

    fn small_gen() -> WorkloadGenerator {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.machines = 4;
        cell.duration_ticks = 144; // Half a day.
        WorkloadGenerator::new(cell).unwrap()
    }

    #[test]
    fn streaming_run_produces_sorted_results() {
        let gen = small_gen();
        let run = run_cell_streaming(
            &gen,
            &SimConfig::default(),
            &PredictorSpec::comparison_set(),
            3,
        )
        .unwrap();
        assert_eq!(run.results.len(), 4);
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(r.machine, MachineId(i as u32));
            assert_eq!(r.reports.len(), 4);
        }
        assert_eq!(run.predictors.len(), 4);
        assert_eq!(run.predictor_index("borg-default(0.9)"), Some(0));
    }

    #[test]
    fn materialized_equals_streaming() {
        let gen = small_gen();
        let machines = gen.generate_cell().unwrap();
        let specs = [PredictorSpec::paper_max()];
        let cfg = SimConfig::default();
        let a = run_cell(gen.config().id.clone(), &machines, &cfg, &specs, 2).unwrap();
        let b = run_cell_streaming(&gen, &cfg, &specs, 2).unwrap();
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.machine, y.machine);
            assert_eq!(x.reports[0].violations, y.reports[0].violations);
            assert_eq!(x.reports[0].mean_savings(), y.reports[0].mean_savings());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let gen = small_gen();
        let specs = [PredictorSpec::NSigma { n: 5.0 }];
        let cfg = SimConfig::default();
        let one = run_cell_streaming(&gen, &cfg, &specs, 1).unwrap();
        let many = run_cell_streaming(&gen, &cfg, &specs, 8).unwrap();
        for (x, y) in one.results.iter().zip(many.results.iter()) {
            assert_eq!(x.reports[0].violations, y.reports[0].violations);
        }
    }

    #[test]
    fn cell_series_aggregation() {
        let gen = small_gen();
        let run = run_cell_streaming(
            &gen,
            &SimConfig::default().with_series(),
            &[PredictorSpec::borg_default()],
            2,
        )
        .unwrap();
        let savings = run.cell_savings_series(0).unwrap();
        assert_eq!(savings.len(), 144);
        // borg-default(0.9) saves exactly 10 % at every tick.
        for s in &savings {
            assert!((s - 0.1).abs() < 1e-9, "savings {s}");
        }
        let util = run.cell_utilization_series().unwrap();
        assert_eq!(util.len(), 144);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn first_error_cancels_remaining_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Plenty of machines, few threads: once the first machine fails,
        // the cancel flag must stop workers from claiming the long tail.
        let n = 10_000;
        let calls = AtomicUsize::new(0);
        let err = parallel_map(n, 2, |idx| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::InvalidConfig {
                what: format!("machine {idx} failed"),
            })
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
        let made = calls.load(Ordering::Relaxed);
        assert!(made < n, "cancel flag ignored: all {made} machines ran");
    }

    #[test]
    fn failing_predictor_build_propagates_from_workers() {
        // An always-failing per-machine closure modeling a predictor whose
        // construction fails inside the worker threads.
        let err = parallel_map(4, 4, |_| {
            PredictorSpec::RcLike { percentile: 250.0 }
                .build()
                .map(|_| unreachable!("percentile 250 must not build"))
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn series_absent_without_flag() {
        let gen = small_gen();
        let run = run_cell_streaming(
            &gen,
            &SimConfig::default(),
            &[PredictorSpec::borg_default()],
            2,
        )
        .unwrap();
        assert!(run.cell_savings_series(0).is_none());
        assert!(run.cell_utilization_series().is_none());
    }
}
