//! Benchmarks for the peak oracle: sliding max, segment tree, and the
//! scheduled-tasks oracle on generated machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oc_core::oracle::{future_peak, machine_oracle};
use oc_core::segtree::MaxTree;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::ids::MachineId;
use oc_trace::sample::UsageMetric;
use oc_trace::time::TICKS_PER_HOUR;
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(48271) % 1000) as f64 / 1000.0)
        .collect()
}

fn bench_future_peak(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/future_peak");
    for n in [2016usize, 8640] {
        let s = series(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sliding_max", n), &s, |b, s| {
            b.iter(|| black_box(future_peak(s, 288)))
        });
    }
    g.finish();
}

fn bench_segtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/segtree");
    let n = 8640usize;
    g.bench_function("add_query_8640", |b| {
        b.iter(|| {
            let mut t = MaxTree::new(n);
            let mut acc = 0.0;
            for i in 0..n {
                t.add(i, (i % 97) as f64 / 97.0);
                if i % 8 == 0 {
                    acc += t.range_max(i.saturating_sub(288), i + 1);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_machine_oracle(c: &mut Criterion) {
    // One week of a generated machine, the per-figure workhorse.
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 1;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let trace = gen.generate_machine(MachineId(0)).unwrap();

    let mut g = c.benchmark_group("oracle/machine_oracle");
    g.throughput(Throughput::Elements(trace.horizon.len()));
    for horizon_h in [3u64, 24, 72] {
        g.bench_with_input(
            BenchmarkId::new("one_week_machine", format!("{horizon_h}h")),
            &horizon_h,
            |b, &h| {
                b.iter(|| black_box(machine_oracle(&trace, UsageMetric::P90, h * TICKS_PER_HOUR)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_future_peak,
    bench_segtree,
    bench_machine_oracle
);
criterion_main!(benches);
