//! One reduced-scale benchmark per paper table/figure.
//!
//! Each bench times the computational core behind the corresponding
//! artifact of the evaluation section, at a miniature scale (2 machines,
//! 1 simulated day) so the whole suite runs in minutes. The full-scale
//! reproduction lives in the `repro` binary (`cargo run -p
//! oc-experiments --release -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use oc_core::config::SimConfig;
use oc_core::oracle::{machine_oracle, task_future_peak};
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_qos::LatencyModel;
use oc_scheduler::ab::{run_ab, AbConfig};
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::{submission_counts, WorkloadGenerator};
use oc_trace::sample::UsageMetric;
use oc_trace::time::TICKS_PER_HOUR;
use std::hint::black_box;

/// Mini cell: 2 machines, 1 day.
fn mini(preset: CellPreset) -> WorkloadGenerator {
    let mut cell = CellConfig::preset(preset);
    cell.machines = 2;
    cell.duration_ticks = 288;
    WorkloadGenerator::new(cell).unwrap()
}

fn fig1_pooling(c: &mut Criterion) {
    let machines = mini(CellPreset::A).generate_cell().unwrap();
    c.bench_function("figures/fig1_pooling_effect", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                let po = machine_oracle(m, UsageMetric::P90, 288);
                acc += po.iter().sum::<f64>();
                for task in &m.tasks {
                    acc += task_future_peak(task, UsageMetric::P90, 288)
                        .first()
                        .copied()
                        .unwrap_or(0.0);
                }
            }
            black_box(acc)
        })
    });
}

fn table1_inventory(c: &mut Criterion) {
    c.bench_function("figures/table1_prod_inventory", |b| {
        b.iter(|| {
            let mut tasks = 0usize;
            for preset in [CellPreset::Prod2, CellPreset::Prod5] {
                let gen = mini(preset);
                tasks += gen
                    .generate_cell()
                    .unwrap()
                    .iter()
                    .map(|m| m.task_count())
                    .sum::<usize>();
            }
            black_box(tasks)
        })
    });
}

fn fig3_qos_link(c: &mut Criterion) {
    let gen = mini(CellPreset::Prod5);
    let cfg = SimConfig::default().with_series();
    let model = LatencyModel::default();
    c.bench_function("figures/fig3_violations_vs_latency", |b| {
        b.iter(|| {
            let run = run_cell_streaming(&gen, &cfg, &[PredictorSpec::borg_default()], 1).unwrap();
            let mut acc = 0.0;
            for r in &run.results {
                let s = r.series.as_ref().unwrap();
                let lat = model.machine_series(&s.true_peak, r.capacity, u64::from(r.machine.0));
                acc += oc_stats::percentile_slice(&lat, 99.0).unwrap();
            }
            black_box(acc)
        })
    });
}

fn fig4_submission_rate(c: &mut Criterion) {
    let gen = mini(CellPreset::A);
    let machines = gen.generate_cell().unwrap();
    c.bench_function("figures/fig4_submission_rate", |b| {
        b.iter(|| black_box(submission_counts(&machines, 288)))
    });
}

fn fig6_percentile_estimators(c: &mut Criterion) {
    let machines = mini(CellPreset::A).generate_cell().unwrap();
    c.bench_function("figures/fig6_percentile_vs_peak", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                for t in m.horizon.iter() {
                    let approx: f64 = m
                        .tasks_at(t)
                        .filter_map(|task| task.sample_at(t))
                        .map(|s| UsageMetric::interpolate(s, 90.0))
                        .sum();
                    acc += approx - m.true_peak_at(t).unwrap();
                }
            }
            black_box(acc)
        })
    });
}

fn fig7_exploration(c: &mut Criterion) {
    let machines = mini(CellPreset::A).generate_cell().unwrap();
    c.bench_function("figures/fig7_runtime_horizon_ratio", |b| {
        b.iter(|| {
            // (a) runtimes, (b) horizon sweep, (c) usage-to-limit ratios.
            let mut acc = 0.0;
            for m in &machines {
                for task in &m.tasks {
                    acc += task.spec.runtime_hours();
                    acc += task
                        .samples
                        .first()
                        .map(|s| s.avg / task.spec.limit)
                        .unwrap_or(0.0);
                }
                for h in [3u64, 24] {
                    acc += machine_oracle(m, UsageMetric::P90, h * TICKS_PER_HOUR)
                        .iter()
                        .sum::<f64>();
                }
            }
            black_box(acc)
        })
    });
}

fn fig8_nsigma_sweep(c: &mut Criterion) {
    let gen = mini(CellPreset::A);
    c.bench_function("figures/fig8_nsigma_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in [2.0, 5.0] {
                let run = run_cell_streaming(
                    &gen,
                    &SimConfig::default(),
                    &[PredictorSpec::NSigma { n }],
                    1,
                )
                .unwrap();
                acc += run.reports(0).map(|r| r.violations).sum::<u64>();
            }
            black_box(acc)
        })
    });
}

fn fig9_rc_sweep(c: &mut Criterion) {
    let gen = mini(CellPreset::A);
    c.bench_function("figures/fig9_rc_like_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for pct in [80.0, 99.0] {
                let run = run_cell_streaming(
                    &gen,
                    &SimConfig::default(),
                    &[PredictorSpec::RcLike { percentile: pct }],
                    1,
                )
                .unwrap();
                acc += run.reports(0).map(|r| r.violations).sum::<u64>();
            }
            black_box(acc)
        })
    });
}

fn fig10_comparison(c: &mut Criterion) {
    let gen = mini(CellPreset::A);
    let specs = PredictorSpec::comparison_set();
    c.bench_function("figures/fig10_predictor_comparison", |b| {
        b.iter(|| {
            black_box(
                run_cell_streaming(&gen, &SimConfig::default().with_series(), &specs, 1).unwrap(),
            )
        })
    });
}

fn fig11_across_cells(c: &mut Criterion) {
    c.bench_function("figures/fig11_max_across_cells", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for preset in [CellPreset::B, CellPreset::G] {
                let gen = mini(preset);
                let run = run_cell_streaming(
                    &gen,
                    &SimConfig::default(),
                    &[PredictorSpec::paper_max()],
                    1,
                )
                .unwrap();
                acc += run.reports(0).map(|r| r.violations).sum::<u64>();
            }
            black_box(acc)
        })
    });
}

fn fig12_across_weeks(c: &mut Criterion) {
    // Two "weeks" of 1 day each, sliced from one run.
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 2;
    cell.duration_ticks = 2 * 288;
    let gen = WorkloadGenerator::new(cell).unwrap();
    c.bench_function("figures/fig12_max_across_weeks", |b| {
        b.iter(|| {
            black_box(
                run_cell_streaming(
                    &gen,
                    &SimConfig::default().with_series(),
                    &[PredictorSpec::paper_max()],
                    1,
                )
                .unwrap(),
            )
        })
    });
}

fn fig13_ab(c: &mut Criterion) {
    let mut cell = CellConfig::preset(CellPreset::Prod2);
    cell.machines = 4;
    let mut cfg = AbConfig::paper_default(cell, 0.2);
    cfg.duration_ticks = 288;
    cfg.replay_threads = 1;
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig13_fig14_ab_experiment", |b| {
        b.iter(|| black_box(run_ab(&cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_pooling,
    table1_inventory,
    fig3_qos_link,
    fig4_submission_rate,
    fig6_percentile_estimators,
    fig7_exploration,
    fig8_nsigma_sweep,
    fig9_rc_sweep,
    fig10_comparison,
    fig11_across_cells,
    fig12_across_weeks,
    fig13_ab
);
criterion_main!(benches);
