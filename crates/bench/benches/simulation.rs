//! End-to-end benchmarks: workload generation and the fortune-teller
//! replay loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_core::sim::simulate_machine;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::ids::MachineId;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/generate_machine");
    g.sample_size(20);
    for days in [1u64, 7] {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.duration_ticks = days * 288;
        let gen = WorkloadGenerator::new(cell).unwrap();
        g.throughput(Throughput::Elements(days * 288));
        g.bench_with_input(BenchmarkId::new("days", days), &gen, |b, gen| {
            b.iter(|| black_box(gen.generate_machine(MachineId(0)).unwrap()))
        });
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.duration_ticks = 7 * 288;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let trace = gen.generate_machine(MachineId(0)).unwrap();
    let predictors: Vec<_> = PredictorSpec::comparison_set()
        .iter()
        .map(|s| s.build().unwrap())
        .collect();
    let cfg = SimConfig::default();

    let mut g = c.benchmark_group("simulation/replay_machine");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.horizon.len()));
    g.bench_function("one_week_4_predictors", |b| {
        b.iter(|| black_box(simulate_machine(&trace, &cfg, &predictors).unwrap()))
    });
    g.finish();
}

fn bench_cell_run(c: &mut Criterion) {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 8;
    cell.duration_ticks = 288;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let specs = [PredictorSpec::paper_max()];
    let cfg = SimConfig::default();

    let mut g = c.benchmark_group("simulation/cell_streaming");
    g.sample_size(10);
    g.bench_function("8_machines_1_day", |b| {
        b.iter(|| black_box(run_cell_streaming(&gen, &cfg, &specs, 2).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_replay, bench_cell_run);
criterion_main!(benches);
