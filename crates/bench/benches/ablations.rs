//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! oracle horizon cost, per-task window size, exact vs streaming
//! percentiles in RC-like, and machine-level vs task-level aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oc_core::config::SimConfig;
use oc_core::oracle::machine_oracle;
use oc_core::predictor::PredictorSpec;
use oc_core::sim::simulate_machine;
use oc_stats::P2Quantile;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::ids::MachineId;
use oc_trace::sample::UsageMetric;
use oc_trace::time::TICKS_PER_HOUR;
use std::hint::black_box;

fn week_machine() -> oc_trace::MachineTrace {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 1;
    WorkloadGenerator::new(cell)
        .unwrap()
        .generate_machine(MachineId(0))
        .unwrap()
}

/// Horizon cost: thanks to the segment tree, the oracle is near-constant
/// in the horizon — the accuracy trade-off of Figure 7(b) is therefore
/// free to resolve on accuracy alone.
fn ablation_oracle_horizon(c: &mut Criterion) {
    let trace = week_machine();
    let mut g = c.benchmark_group("ablations/oracle_horizon");
    g.sample_size(20);
    for h in [3u64, 12, 24, 72, 168] {
        g.bench_with_input(BenchmarkId::new("hours", h), &h, |b, &h| {
            b.iter(|| black_box(machine_oracle(&trace, UsageMetric::P90, h * TICKS_PER_HOUR)))
        });
    }
    g.finish();
}

/// Window size: the node agent's memory/CPU vs accuracy knob
/// (`max_num_samples`). Cost grows with the window because RC-like sorts
/// it per task per tick.
fn ablation_window_size(c: &mut Criterion) {
    let trace = week_machine();
    let mut g = c.benchmark_group("ablations/window_size");
    g.sample_size(10);
    for hours in [2.0f64, 10.0, 24.0] {
        let cfg = SimConfig::default().with_history_hours(hours);
        let predictors = vec![PredictorSpec::paper_max().build().unwrap()];
        g.bench_with_input(
            BenchmarkId::new("history_hours", hours as u64),
            &cfg,
            |b, cfg| b.iter(|| black_box(simulate_machine(&trace, cfg, &predictors).unwrap())),
        );
    }
    g.finish();
}

/// Exact sort-based percentile vs the constant-memory P² estimator — the
/// trade the node agent would face with much larger windows.
fn ablation_percentile_estimator(c: &mut Criterion) {
    let xs: Vec<f64> = (0..120)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0)
        .collect();
    let mut g = c.benchmark_group("ablations/percentile");
    g.bench_function("exact_sort_120", |b| {
        b.iter(|| black_box(oc_stats::percentile_slice(&xs, 99.0).unwrap()))
    });
    g.bench_function("p2_streaming_120", |b| {
        b.iter(|| {
            let mut q = P2Quantile::new(0.99).unwrap();
            for &x in &xs {
                q.push(x);
            }
            black_box(q.estimate().unwrap())
        })
    });
    g.finish();
}

/// Machine-level aggregation (N-sigma) vs task-level aggregation
/// (RC-like): the per-tick cost difference of the two statistical bases.
fn ablation_aggregation_level(c: &mut Criterion) {
    let trace = week_machine();
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("ablations/aggregation");
    g.sample_size(10);
    for spec in [
        PredictorSpec::NSigma { n: 5.0 },
        PredictorSpec::RcLike { percentile: 99.0 },
    ] {
        let predictors = vec![spec.build().unwrap()];
        g.bench_with_input(BenchmarkId::new("replay", spec.name()), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_machine(&trace, cfg, &predictors).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_oracle_horizon,
    ablation_window_size,
    ablation_percentile_estimator,
    ablation_aggregation_level
);
criterion_main!(benches);
