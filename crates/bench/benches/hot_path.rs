//! The per-tick prediction hot path: observe + predict, ticks per second.
//!
//! Measures the full node-agent inner loop on a 50-task machine — feed one
//! tick of observations into the view, then run the paper's four-predictor
//! comparison set — against a `naive` baseline that replicates the engine
//! before the incremental-statistics rewrite: per-call clone-and-sort
//! percentiles, two-pass standard deviation, per-tick sort + binary-search
//! task retention, and full limit rescans every tick.
//!
//! Run with `cargo bench -p oc-bench --bench hot_path`; the acceptance
//! numbers live in `BENCH_hot_path.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oc_core::config::SimConfig;
use oc_core::predictor::{PeakPredictor, PredictorSpec};
use oc_core::view::MachineView;
use oc_stats::resource::Res2;
use oc_trace::ids::{JobId, TaskId};
use oc_trace::time::Tick;
use std::hint::black_box;

const TASKS: usize = 50;
const TICKS: u64 = 288; // One simulated day.

/// Deterministic per-(task, tick) usage in [0, limit).
fn usage(task: usize, tick: u64) -> f64 {
    let h = (task as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tick)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    ((h >> 11) % 10_000) as f64 / 10_000.0 * LIMIT
}

const LIMIT: f64 = 1.0 / TASKS as f64;

fn task_id(i: usize) -> TaskId {
    TaskId::new(JobId(1 + i as u64 / 10), (i % 10) as u32)
}

/// The current engine: incremental windows, generation-stamp sweep,
/// event-triggered limit sums.
fn bench_engine(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let predictors: Vec<Box<dyn PeakPredictor>> = PredictorSpec::comparison_set()
        .iter()
        .map(|s| s.build().unwrap())
        .collect();
    let mut g = c.benchmark_group("hot_path");
    g.throughput(Throughput::Elements(TICKS));
    g.bench_function("engine", |b| {
        b.iter(|| {
            let mut view = MachineView::new(1.0, &cfg);
            let mut acc = 0.0;
            for t in 0..TICKS {
                view.observe(
                    Tick(t),
                    (0..TASKS).map(|i| (task_id(i), LIMIT, usage(i, t))),
                );
                for p in &predictors {
                    acc += p.predict(&view);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The vectorized engine: the same loop over both resource lanes —
/// `observe_vec` feeding CPU and memory samples, `predict_vec` running
/// the comparison set per lane. The acceptance budget is <= 1.3x
/// `engine` (checked by `scripts/check_bench_json.sh`): the CPU lane
/// runs the identical incremental path, and the memory lane tracks only
/// its windowed peak (`PeakWindow`, O(1) amortized push — memory is
/// incompressible, so peak is the statistic admission needs), so the
/// second lane adds a few percent, not a second order-stat index.
fn bench_engine_vector(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let predictors: Vec<Box<dyn PeakPredictor>> = PredictorSpec::comparison_set()
        .iter()
        .map(|s| s.build().unwrap())
        .collect();
    let mut g = c.benchmark_group("hot_path");
    g.throughput(Throughput::Elements(TICKS));
    g.bench_function("engine_vector", |b| {
        b.iter(|| {
            let mut view = MachineView::new(1.0, &cfg);
            let mut acc = 0.0;
            for t in 0..TICKS {
                view.observe_vec(
                    Tick(t),
                    (0..TASKS).map(|i| {
                        let u = usage(i, t);
                        (
                            task_id(i),
                            Res2::from_lanes([LIMIT, LIMIT]),
                            // Memory lane: a deterministic shuffle of the CPU
                            // sample so the lanes are distinct but equally hot.
                            Res2::from_lanes([u, usage(i, t.wrapping_add(97))]),
                        )
                    }),
                );
                for p in &predictors {
                    let v = p.predict_vec(&view);
                    acc += v.lane(0) + v.lane(1);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The same engine loop with observability switched on: tracing enabled
/// so `MachineView::observe` takes its guarded counter branch. The
/// acceptance budget is <= 3% over `engine` (see `BENCH_hot_path.json`).
fn bench_engine_telemetry(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let predictors: Vec<Box<dyn PeakPredictor>> = PredictorSpec::comparison_set()
        .iter()
        .map(|s| s.build().unwrap())
        .collect();
    oc_telemetry::trace::enable();
    let mut g = c.benchmark_group("hot_path");
    g.throughput(Throughput::Elements(TICKS));
    g.bench_function("engine_telemetry", |b| {
        b.iter(|| {
            let mut view = MachineView::new(1.0, &cfg);
            let mut acc = 0.0;
            for t in 0..TICKS {
                view.observe(
                    Tick(t),
                    (0..TASKS).map(|i| (task_id(i), LIMIT, usage(i, t))),
                );
                for p in &predictors {
                    acc += p.predict(&view);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
    oc_telemetry::trace::disable();
    drop(oc_telemetry::trace::drain());
}

/// A faithful replica of the pre-rewrite hot path, kept here so the
/// speedup stays measurable against the same workload.
mod naive {
    use oc_stats::percentile_of_sorted;
    use oc_trace::ids::TaskId;
    use std::collections::{BTreeMap, VecDeque};

    pub struct NaiveWindow {
        buf: VecDeque<f64>,
        capacity: usize,
        sum: f64,
    }

    impl NaiveWindow {
        pub fn new(capacity: usize) -> NaiveWindow {
            NaiveWindow {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                sum: 0.0,
            }
        }

        pub fn push(&mut self, x: f64) {
            if self.buf.len() == self.capacity {
                self.sum -= self.buf.pop_front().unwrap();
            }
            self.buf.push_back(x);
            self.sum += x;
        }

        pub fn is_empty(&self) -> bool {
            self.buf.is_empty()
        }

        pub fn mean(&self) -> f64 {
            if self.buf.is_empty() {
                0.0
            } else {
                self.sum / self.buf.len() as f64
            }
        }

        /// Two-pass exact std — the pre-rewrite O(w) computation.
        pub fn population_std(&self) -> f64 {
            let n = self.buf.len();
            if n < 2 {
                return 0.0;
            }
            let mean = self.mean();
            let var = self.buf.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            var.sqrt()
        }

        /// Clone-sort percentile — the pre-rewrite O(w log w) + alloc read.
        pub fn percentile(&self, p: f64) -> Option<f64> {
            if self.buf.is_empty() {
                return None;
            }
            let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            percentile_of_sorted(&sorted, p).ok()
        }
    }

    pub struct NaiveTask {
        pub limit: f64,
        pub window: NaiveWindow,
        pub age: usize,
    }

    pub struct NaiveView {
        pub min_num_samples: usize,
        max_num_samples: usize,
        pub tasks: BTreeMap<TaskId, NaiveTask>,
        pub warm_window: NaiveWindow,
        pub cold_limit_sum: f64,
        pub total_limit: f64,
    }

    impl NaiveView {
        pub fn new(min_num_samples: usize, max_num_samples: usize) -> NaiveView {
            NaiveView {
                min_num_samples,
                max_num_samples,
                tasks: BTreeMap::new(),
                warm_window: NaiveWindow::new(max_num_samples),
                cold_limit_sum: 0.0,
                total_limit: 0.0,
            }
        }

        /// The pre-rewrite observe: seen-vec sort + binary-search retain,
        /// then full rescans of both limit sums.
        pub fn observe(&mut self, alive: impl IntoIterator<Item = (TaskId, f64, f64)>) {
            let mut seen: Vec<TaskId> = Vec::new();
            let mut warm_total = 0.0;
            for (id, limit, usage) in alive {
                seen.push(id);
                let max_num_samples = self.max_num_samples;
                let entry = self.tasks.entry(id).or_insert_with(|| NaiveTask {
                    limit,
                    window: NaiveWindow::new(max_num_samples),
                    age: 0,
                });
                entry.limit = limit;
                entry.window.push(usage);
                entry.age += 1;
                if entry.age >= self.min_num_samples {
                    warm_total += usage;
                }
            }
            seen.sort_unstable();
            self.tasks.retain(|id, _| seen.binary_search(id).is_ok());
            self.warm_window.push(warm_total);

            self.total_limit = self.tasks.values().map(|t| t.limit).sum();
            self.cold_limit_sum = self
                .tasks
                .values()
                .filter(|t| t.age < self.min_num_samples)
                .map(|t| t.limit)
                .sum();
        }
    }

    /// The comparison set against the naive view: borg-default(0.9),
    /// rc-like(p99), n-sigma(5), and max(n-sigma, rc-like).
    pub fn predict_comparison_set(view: &NaiveView) -> f64 {
        let clamp = |raw: f64| raw.clamp(0.0, view.total_limit);

        let borg = clamp(0.9 * view.total_limit);

        let mut rc = view.cold_limit_sum;
        for task in view.tasks.values() {
            if task.age >= view.min_num_samples {
                let pct = task.window.percentile(99.0).unwrap_or(task.limit);
                rc += pct.min(task.limit);
            }
        }
        let rc = clamp(rc);

        let n_sigma = clamp(if view.warm_window.is_empty() {
            view.total_limit
        } else {
            view.warm_window.mean() + 5.0 * view.warm_window.population_std() + view.cold_limit_sum
        });

        borg + rc + n_sigma + n_sigma.max(rc)
    }
}

fn bench_naive(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("hot_path");
    g.throughput(Throughput::Elements(TICKS));
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut view = naive::NaiveView::new(cfg.min_num_samples, cfg.max_num_samples);
            let mut acc = 0.0;
            for t in 0..TICKS {
                view.observe((0..TASKS).map(|i| (task_id(i), LIMIT, usage(i, t))));
                acc += naive::predict_comparison_set(&view);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_engine_vector,
    bench_engine_telemetry,
    bench_naive
);
criterion_main!(benches);
