//! Benchmarks for predictor evaluation cost — the paper requires node
//! agents to be "lightweight, in both CPU and memory footprint".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::view::MachineView;
use oc_trace::ids::{JobId, TaskId};
use oc_trace::time::Tick;
use std::hint::black_box;

/// A warmed view hosting `tasks` tasks with a full 10 h history.
fn loaded_view(tasks: usize) -> MachineView {
    let cfg = SimConfig::default();
    let mut view = MachineView::new(1.0, &cfg);
    for t in 0..cfg.max_num_samples as u64 + 8 {
        view.observe(
            Tick(t),
            (0..tasks).map(|i| {
                let limit = 0.05 + (i % 7) as f64 * 0.01;
                let usage = limit * (0.3 + 0.2 * ((t as f64 / 12.0 + i as f64).sin()));
                (TaskId::new(JobId(i as u64 + 1), 0), limit, usage)
            }),
        );
    }
    view
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors/predict");
    for tasks in [10usize, 30, 100] {
        let view = loaded_view(tasks);
        for spec in [
            PredictorSpec::borg_default(),
            PredictorSpec::RcLike { percentile: 99.0 },
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::paper_max(),
        ] {
            let predictor = spec.build().unwrap();
            g.bench_with_input(BenchmarkId::new(spec.name(), tasks), &view, |b, view| {
                b.iter(|| black_box(predictor.predict(view)))
            });
        }
    }
    g.finish();
}

fn bench_observe(c: &mut Criterion) {
    // The per-tick node-agent bookkeeping cost.
    let mut g = c.benchmark_group("predictors/observe");
    for tasks in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("tick", tasks), &tasks, |b, &tasks| {
            let cfg = SimConfig::default();
            b.iter_batched(
                || (MachineView::new(1.0, &cfg), 0u64),
                |(mut view, mut t)| {
                    for _ in 0..50 {
                        view.observe(
                            Tick(t),
                            (0..tasks).map(|i| (TaskId::new(JobId(i as u64 + 1), 0), 0.05, 0.02)),
                        );
                        t += 1;
                    }
                    black_box(view.total_limit())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predict, bench_observe);
criterion_main!(benches);
