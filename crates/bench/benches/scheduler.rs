//! Benchmarks for the live cluster: admission, placement, and whole-tick
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_scheduler::{run_cluster, ClusterConfig, PlacementPolicy};
use oc_trace::cell::{CellConfig, CellPreset};
use std::hint::black_box;

fn cfg(machines: usize, placement: PlacementPolicy) -> ClusterConfig {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = machines;
    ClusterConfig {
        cell,
        jobs_per_tick: 0.05 * machines as f64,
        duration_ticks: 96,
        sim: SimConfig::default(),
        predictor: PredictorSpec::paper_max(),
        placement,
        arrival_seed: 5,
    }
}

fn bench_cluster_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler/cluster_8h");
    g.sample_size(10);
    for machines in [8usize, 32] {
        let cfg = cfg(machines, PlacementPolicy::WorstFit);
        g.bench_with_input(BenchmarkId::new("machines", machines), &cfg, |b, cfg| {
            b.iter(|| black_box(run_cluster(cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_placement_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler/placement");
    g.sample_size(10);
    for placement in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::WorstFit,
        PlacementPolicy::RandomK(5),
    ] {
        let cfg = cfg(16, placement);
        g.bench_with_input(
            BenchmarkId::new("policy", placement.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(run_cluster(cfg).unwrap().stats.admitted)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cluster_day, bench_placement_policies);
criterion_main!(benches);
