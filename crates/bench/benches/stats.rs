//! Benchmarks for the statistics substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oc_stats::{percentile_slice, Ecdf, MovingWindow, P2Quantile, Welford};
use std::hint::black_box;

fn data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 10_000) as f64 / 10_000.0)
        .collect()
}

fn bench_welford(c: &mut Criterion) {
    let xs = data(10_000);
    let mut g = c.benchmark_group("stats/welford");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("push_10k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            black_box(w.population_std())
        })
    });
    g.finish();
}

fn bench_moving_window(c: &mut Criterion) {
    let xs = data(10_000);
    let mut g = c.benchmark_group("stats/moving_window");
    for capacity in [24usize, 120, 288] {
        g.bench_with_input(
            BenchmarkId::new("push_mean_std", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut w = MovingWindow::new(cap).unwrap();
                    let mut acc = 0.0;
                    for &x in &xs {
                        w.push(x);
                        acc += w.mean();
                    }
                    black_box(acc + w.population_std())
                })
            },
        );
    }
    g.finish();
}

fn bench_percentiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats/percentile");
    for n in [120usize, 2016] {
        let xs = data(n);
        g.bench_with_input(BenchmarkId::new("exact_p99", n), &xs, |b, xs| {
            b.iter(|| black_box(percentile_slice(xs, 99.0).unwrap()))
        });
    }
    let xs = data(10_000);
    g.bench_function("p2_streaming_p99_10k", |b| {
        b.iter(|| {
            let mut q = P2Quantile::new(0.99).unwrap();
            for &x in &xs {
                q.push(x);
            }
            black_box(q.estimate().unwrap())
        })
    });
    g.finish();
}

fn bench_ecdf(c: &mut Criterion) {
    let xs = data(20_000);
    c.bench_function("stats/ecdf_build_query_20k", |b| {
        b.iter(|| {
            let e = Ecdf::new(xs.clone()).unwrap();
            black_box(e.quantile(0.95).unwrap() + e.prob_le(0.5))
        })
    });
}

criterion_group!(
    benches,
    bench_welford,
    bench_moving_window,
    bench_percentiles,
    bench_ecdf
);
criterion_main!(benches);
