//! Property tests for [`Histogram`]: quantile monotonicity and the
//! merge-equals-concatenation law the serving layer's `STATS` aggregation
//! rests on (per-shard histograms merged bin-wise must behave exactly as
//! if one histogram had ingested every shard's stream).

use oc_stats::Histogram;
use proptest::prelude::*;

/// The static shape used throughout: values outside `[0, 100)` exercise
/// the underflow/overflow paths.
const LO: f64 = 0.0;
const HI: f64 = 100.0;
const BINS: usize = 37;

fn hist(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(LO, HI, BINS).unwrap();
    h.extend(values.iter().copied());
    h
}

proptest! {
    /// `quantile` is monotone in `p`: more mass below a higher quantile.
    #[test]
    fn quantile_is_monotone_in_p(
        values in proptest::collection::vec(-50.0f64..150.0, 1..200),
        p_lo in 0.0f64..=100.0,
        p_hi in 0.0f64..=100.0,
    ) {
        let h = hist(&values);
        let (p_lo, p_hi) = if p_lo <= p_hi { (p_lo, p_hi) } else { (p_hi, p_lo) };
        // All mass may be out of range (underflow/overflow only).
        let (Ok(q_lo), Ok(q_hi)) = (h.quantile(p_lo), h.quantile(p_hi)) else {
            prop_assert!(h.counts().iter().sum::<u64>() == 0);
            return Ok(());
        };
        prop_assert!(
            q_lo <= q_hi,
            "quantile({p_lo}) = {q_lo} > quantile({p_hi}) = {q_hi}"
        );
    }

    /// `a.merge(&b)` equals ingesting the concatenated stream: identical
    /// per-bin counts, underflow, overflow, and total.
    #[test]
    fn merge_equals_concatenated_stream_bin_for_bin(
        xs in proptest::collection::vec(-50.0f64..150.0, 0..150),
        ys in proptest::collection::vec(-50.0f64..150.0, 0..150),
    ) {
        let mut merged = hist(&xs);
        merged.merge(&hist(&ys)).unwrap();
        let concat: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let reference = hist(&concat);
        prop_assert_eq!(merged.counts(), reference.counts());
        prop_assert_eq!(merged.underflow(), reference.underflow());
        prop_assert_eq!(merged.overflow(), reference.overflow());
        prop_assert_eq!(merged.total(), reference.total());
    }

    /// Quantiles read off a merged histogram match the histogram of the
    /// merged stream bit-for-bit — the `STATS` p50/p99 merge law.
    #[test]
    fn quantiles_after_merge_match_merged_stream(
        xs in proptest::collection::vec(-50.0f64..150.0, 0..150),
        ys in proptest::collection::vec(-50.0f64..150.0, 1..150),
        p in 0.0f64..=100.0,
    ) {
        let mut merged = hist(&xs);
        merged.merge(&hist(&ys)).unwrap();
        let concat: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let reference = hist(&concat);
        match (merged.quantile(p), reference.quantile(p)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "quantile({}) diverged: {} vs {}", p, a, b
            ),
            (Err(_), Err(_)) => {} // both empty in range — still agreeing
            (a, b) => return Err(format!("divergent results: {a:?} vs {b:?}")),
        }
    }

    /// Merging histograms of different shapes is rejected, never silently
    /// mangled.
    #[test]
    fn merge_rejects_shape_mismatch(bins in 1usize..80) {
        let mut h = Histogram::new(LO, HI, BINS).unwrap();
        let other = Histogram::new(LO, HI, bins).unwrap();
        if bins == BINS {
            prop_assert!(h.merge(&other).is_ok());
        } else {
            prop_assert!(h.merge(&other).is_err());
        }
    }
}
