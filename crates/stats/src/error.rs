//! Error type shared by the statistics routines.

use std::fmt;

/// Errors produced by statistics routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample set was empty but the operation needs data.
    Empty,
    /// Two paired inputs had different lengths.
    MismatchedLengths {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. a percentile > 100).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// An input contained a non-finite value (NaN or infinity).
    NonFinite,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty input"),
            StatsError::MismatchedLengths { left, right } => {
                write!(f, "mismatched input lengths: {left} vs {right}")
            }
            StatsError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            StatsError::NonFinite => write!(f, "input contains a non-finite value"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        assert_eq!(StatsError::Empty.to_string(), "empty input");
        assert_eq!(
            StatsError::MismatchedLengths { left: 3, right: 4 }.to_string(),
            "mismatched input lengths: 3 vs 4"
        );
        assert_eq!(
            StatsError::InvalidParameter {
                what: "q in [0, 1]"
            }
            .to_string(),
            "invalid parameter: q in [0, 1]"
        );
        assert_eq!(
            StatsError::NonFinite.to_string(),
            "input contains a non-finite value"
        );
    }
}
