//! Empirical cumulative distribution functions.

use crate::error::StatsError;
use crate::percentile::percentile_of_sorted;

/// An empirical CDF over a finite sample.
///
/// Nearly every figure in the paper is a CDF over machines, tasks or time
/// instants; this type is the common currency between the simulator and the
/// experiment harness. Construction sorts once; queries are O(log n).
///
/// # Examples
///
/// ```
/// use oc_stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
/// assert_eq!(cdf.prob_le(2.0), 0.75);
/// assert_eq!(cdf.prob_le(0.5), 0.0);
/// assert_eq!(cdf.quantile(1.0).unwrap(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (order irrelevant).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample and
    /// [`StatsError::NonFinite`] if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NonFinite);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Ecdf { sorted: samples })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`.
    pub fn prob_le(&self, x: f64) -> f64 {
        // partition_point returns the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value `v` with `P(X <= v) >= q`,
    /// interpolated linearly between order statistics.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 <= q <= 1`.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                what: "quantile must be in [0, 1]",
            });
        }
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted samples (ascending).
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Yields `(x, P(X <= x))` points suitable for plotting the CDF as a
    /// step function: one point per sample, cumulative probability at each.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Downsamples the CDF to at most `n` evenly spaced (in probability)
    /// points, always including the first and last sample. Useful when
    /// exporting plots from millions of samples.
    pub fn resampled_points(&self, n: usize) -> Vec<(f64, f64)> {
        let len = self.sorted.len();
        if n == 0 {
            return Vec::new();
        }
        if len <= n {
            return self.points().collect();
        }
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let idx = (k as f64 / (n - 1) as f64 * (len - 1) as f64).round() as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / len as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert_eq!(Ecdf::new(vec![]).unwrap_err(), StatsError::Empty);
        assert_eq!(
            Ecdf::new(vec![1.0, f64::NAN]).unwrap_err(),
            StatsError::NonFinite
        );
    }

    #[test]
    fn prob_le_step_behavior() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.prob_le(0.0), 0.0);
        assert_eq!(cdf.prob_le(1.0), 0.25);
        assert_eq!(cdf.prob_le(2.5), 0.5);
        assert_eq!(cdf.prob_le(4.0), 1.0);
        assert_eq!(cdf.prob_le(9.0), 1.0);
    }

    #[test]
    fn quantile_bounds() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(cdf.quantile(0.0).unwrap(), 1.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 5.0);
        assert_eq!(cdf.quantile(0.5).unwrap(), 3.0);
        assert!(cdf.quantile(1.5).is_err());
    }

    #[test]
    fn duplicates_accumulate() {
        let cdf = Ecdf::new(vec![2.0, 2.0, 2.0, 8.0]).unwrap();
        assert_eq!(cdf.prob_le(2.0), 0.75);
        assert_eq!(cdf.prob_le(1.9), 0.0);
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn resample_keeps_endpoints() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = Ecdf::new(samples).unwrap();
        let pts = cdf.resampled_points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 999.0);
        assert!((pts[10].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resample_small_input_passthrough() {
        let cdf = Ecdf::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(cdf.resampled_points(10).len(), 2);
        assert!(cdf.resampled_points(0).is_empty());
    }

    #[test]
    fn summary_stats() {
        let cdf = Ecdf::new(vec![4.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 4.0);
        assert_eq!(cdf.mean(), 2.5);
        assert_eq!(cdf.len(), 4);
    }
}
