//! One-shot descriptive summaries of a sample.

use crate::ecdf::Ecdf;
use crate::error::StatsError;
use crate::welford::Welford;

/// Descriptive statistics of a finite sample, computed in one pass plus a
/// sort: count, mean, std, min/max and a standard set of percentiles.
///
/// # Examples
///
/// ```
/// use oc_stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.mean, 3.0);
/// assert_eq!(s.p50, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 50th percentile (median).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] on an empty slice and
    /// [`StatsError::NonFinite`] on NaN input.
    pub fn from_samples(samples: &[f64]) -> Result<Self, StatsError> {
        let ecdf = Ecdf::new(samples.to_vec())?;
        let mut w = Welford::new();
        w.extend(samples.iter().copied());
        Ok(Summary {
            count: samples.len(),
            mean: w.mean(),
            std: w.population_std(),
            min: ecdf.min(),
            p50: ecdf.quantile(0.50)?,
            p90: ecdf.quantile(0.90)?,
            p95: ecdf.quantile(0.95)?,
            p99: ecdf.quantile(0.99)?,
            max: ecdf.max(),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} p50={:.4} p90={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std,
            self.min,
            self.p50,
            self.p90,
            self.p95,
            self.p99,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.5);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Summary::from_samples(&[]).unwrap_err(), StatsError::Empty);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::from_samples(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }
}
