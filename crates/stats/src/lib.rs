//! Statistics substrate for the overcommit reproduction.
//!
//! This crate collects the numerical building blocks that the paper's
//! evaluation relies on, implemented from scratch so the workspace stays
//! dependency-light:
//!
//! * [`Ecdf`] — empirical cumulative distribution functions, the plot type
//!   used by almost every figure in the paper.
//! * [`Welford`] — numerically stable streaming mean / variance
//!   (used by the N-sigma predictor and by metric accumulation).
//! * [`percentile`] — exact percentiles with linear interpolation, plus the
//!   streaming [`percentile::P2Quantile`] estimator for constant-memory
//!   operation on machine agents.
//! * [`MovingWindow`] — the bounded per-task sample window
//!   (`max_num_samples` in the paper) with O(1) mean/std.
//! * [`OrderStatWindow`] — the same FIFO window with a sorted index for
//!   O(1) percentile/min/max reads on the per-tick prediction hot path.
//! * [`resource`] — fixed-arity per-resource vectors ([`Res2`]) and
//!   SoA window bundles ([`MovingWindowVec`], [`OrderStatWindowVec`])
//!   for multi-resource (CPU + memory) overcommit.
//! * [`correlation`] — Pearson and Spearman rank correlation
//!   (Section 3.3's violation-rate vs. latency analysis).
//! * [`regression`] — ordinary least squares (the "slope = 14.1" fit).
//! * [`bucket`] — bucketed error-bar summaries (Figure 3(d)).
//! * [`Histogram`] — fixed-width histograms for quick distribution checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod correlation;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod moving;
pub mod order_stat;
pub mod peak;
pub mod percentile;
pub mod regression;
pub mod resource;
pub mod summary;
pub mod welford;

pub use bucket::{BucketStat, Bucketed};
pub use correlation::{pearson, spearman};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use histogram::Histogram;
pub use moving::MovingWindow;
pub use order_stat::OrderStatWindow;
pub use peak::PeakWindow;
pub use percentile::{percentile_of_sorted, percentile_slice, P2Quantile};
pub use regression::{ols, OlsFit};
pub use resource::{MovingWindowVec, OrderStatWindowVec, Res2, ResourceVec};
pub use summary::Summary;
pub use welford::Welford;
