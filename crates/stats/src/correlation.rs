//! Pearson and Spearman correlation coefficients.
//!
//! Section 3.3 of the paper quantifies the violation-rate / latency link with
//! Spearman's rank correlation (0.42 raw, 0.95 after bucketing). These are
//! the routines the `fig3` experiment uses to reproduce those numbers.

use crate::error::StatsError;

fn validate_pairs(xs: &[f64], ys: &[f64]) -> Result<(), StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::MismatchedLengths {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::Empty);
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

/// Pearson product-moment correlation of two paired samples.
///
/// # Errors
///
/// Returns [`StatsError::MismatchedLengths`] if the slices differ in length,
/// [`StatsError::Empty`] with fewer than two pairs, and
/// [`StatsError::NonFinite`] on NaN/inf input. A zero-variance input yields
/// `Ok(0.0)` (no linear association measurable).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(xs, ys)?;
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Assigns average ranks (1-based) to `xs`, ties receiving the mean of the
/// ranks they span — the standard convention for Spearman's rho.
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite input"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation of two paired samples (tie-aware).
///
/// Computed as the Pearson correlation of the average ranks, which handles
/// ties correctly (unlike the `1 - 6 Σd²/n(n²-1)` shortcut).
///
/// # Errors
///
/// Same contract as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(xs, ys)?;
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::MismatchedLengths { .. })
        ));
        assert_eq!(pearson(&[1.0], &[1.0]), Err(StatsError::Empty));
        assert_eq!(
            pearson(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // A monotone nonlinear map leaves Spearman at 1 but lowers Pearson.
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn zero_variance_yields_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys).unwrap(), 0.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn known_spearman_value() {
        // Classic example with one swapped pair.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 2.0, 3.0, 5.0, 4.0];
        // d = [0,0,0,1,1] => rho = 1 - 6*2 / (5*24) = 0.9.
        assert!((spearman(&xs, &ys).unwrap() - 0.9).abs() < 1e-12);
    }
}
