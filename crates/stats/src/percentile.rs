//! Exact and streaming percentile estimation.
//!
//! The RC-like predictor is defined as a sum of per-task usage percentiles,
//! so percentile computation sits on the simulator's hot path. Two variants
//! are provided:
//!
//! * [`percentile_slice`] / [`percentile_of_sorted`] — exact, with linear
//!   interpolation between order statistics (the same convention as NumPy's
//!   default `linear` method). Used wherever the window is already
//!   materialized (the per-task moving window is small by design).
//! * [`P2Quantile`] — the Jain & Chlamtac P² streaming estimator. Constant
//!   memory, used in the bench ablation comparing exact vs. streaming
//!   percentile tracking on a node agent.

use crate::error::StatsError;

/// Returns the `p`-th percentile (0..=100) of `sorted`, which must already be
/// ascending, using linear interpolation between closest ranks.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] on an empty slice and
/// [`StatsError::InvalidParameter`] if `p` is outside `[0, 100]` or NaN.
///
/// # Examples
///
/// ```
/// use oc_stats::percentile_of_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_of_sorted(&xs, 0.0).unwrap(), 1.0);
/// assert_eq!(percentile_of_sorted(&xs, 100.0).unwrap(), 4.0);
/// assert_eq!(percentile_of_sorted(&xs, 50.0).unwrap(), 2.5);
/// ```
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            what: "percentile must be in [0, 100]",
        });
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Returns the `p`-th percentile (0..=100) of an unsorted slice.
///
/// Sorts a copy; prefer [`percentile_of_sorted`] when computing several
/// percentiles of the same data.
///
/// # Errors
///
/// Same as [`percentile_of_sorted`], plus [`StatsError::NonFinite`] if the
/// data contains NaN (which has no place in a sort order).
pub fn percentile_slice(xs: &[f64], p: f64) -> Result<f64, StatsError> {
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NonFinite);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    percentile_of_sorted(&sorted, p)
}

/// Streaming quantile estimator using the P² algorithm
/// (Jain & Chlamtac, CACM 1985).
///
/// Tracks a single quantile `q in (0, 1)` with five markers and O(1) memory
/// and update cost. Accuracy is excellent for smooth distributions and
/// adequate (a few percent of the interquartile range) for the bursty usage
/// series produced by the trace generator, which is verified by tests below.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// Initial observations before the marker invariant is established.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < q < 1`.
    pub fn new(q: f64) -> Result<Self, StatsError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(StatsError::InvalidParameter {
                what: "quantile must be in (0, 1)",
            });
        }
        Ok(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile in `(0, 1)`.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                for (h, v) in self.heights.iter_mut().zip(self.initial.iter()) {
                    *h = *v;
                }
            }
            return;
        }

        // Find the cell k (0..=3) containing x, adjusting extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let dp = self.positions[i + 1] - self.positions[i];
            let dm = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0) {
                let sign = d.signum();
                let parabolic = self.heights[i]
                    + sign / (dp - dm)
                        * ((dp - sign) * (self.heights[i] - self.heights[i - 1]) / -dm
                            + (-dm + sign) * (self.heights[i + 1] - self.heights[i]) / dp);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    // Fall back to linear adjustment.
                    let j = if sign > 0.0 { i + 1 } else { i - 1 };
                    self.heights[i] += sign * (self.heights[j] - self.heights[i])
                        / (self.positions[j] - self.positions[i]);
                }
                self.positions[i] += sign;
            }
        }
    }

    /// Current quantile estimate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] before any observation has been pushed.
    pub fn estimate(&self) -> Result<f64, StatsError> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        if self.count <= 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            return percentile_of_sorted(&sorted, self.q * 100.0);
        }
        Ok(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_rejects_bad_input() {
        assert_eq!(percentile_of_sorted(&[], 50.0), Err(StatsError::Empty));
        assert!(matches!(
            percentile_of_sorted(&[1.0], -1.0),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            percentile_of_sorted(&[1.0], 101.0),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert_eq!(
            percentile_slice(&[1.0, f64::NAN], 50.0),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile_of_sorted(&xs, 25.0).unwrap(), 20.0);
        assert_eq!(percentile_of_sorted(&xs, 10.0).unwrap(), 14.0);
        assert_eq!(percentile_of_sorted(&xs, 90.0).unwrap(), 46.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_of_sorted(&[7.0], 99.0).unwrap(), 7.0);
    }

    #[test]
    fn percentile_unsorted_matches_sorted() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile_slice(&xs, 50.0).unwrap(), 2.0);
    }

    #[test]
    fn p2_rejects_bad_quantile() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn p2_small_counts_are_exact() {
        let mut p2 = P2Quantile::new(0.5).unwrap();
        assert_eq!(p2.estimate(), Err(StatsError::Empty));
        p2.push(3.0);
        p2.push(1.0);
        p2.push(2.0);
        assert_eq!(p2.estimate().unwrap(), 2.0);
    }

    #[test]
    fn p2_uniform_median_converges() {
        // Deterministic low-discrepancy sequence over [0, 1).
        let mut p2 = P2Quantile::new(0.5).unwrap();
        let mut x = 0.0_f64;
        for _ in 0..20_000 {
            x = (x + 0.618_033_988_749_894_9) % 1.0;
            p2.push(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_tail_quantile_converges() {
        let mut p2 = P2Quantile::new(0.95).unwrap();
        let mut x = 0.0_f64;
        for _ in 0..50_000 {
            x = (x + 0.618_033_988_749_894_9) % 1.0;
            p2.push(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.95).abs() < 0.02, "p95 estimate {est}");
    }
}
