//! Order-statistics sliding window: O(log w) insert, O(1) percentile reads.
//!
//! The RC-like predictor asks for a per-task usage percentile on every
//! simulated tick, and [`crate::MovingWindow::percentile`] answers it by
//! cloning and sorting the whole buffer — O(w log w) *per call*, plus an
//! allocation. [`OrderStatWindow`] keeps the same FIFO semantics but also
//! maintains a sorted index of the retained samples, updated by binary
//! search on each push, so percentile, min, and max reads are O(1)-ish
//! (percentile does two slice reads and an interpolation) and no call on
//! the hot path allocates after construction.
//!
//! Ordering uses [`f64::total_cmp`], so `-0.0`/`0.0` and NaN inputs have a
//! deterministic position instead of poisoning the sort. For ordinary
//! (non-NaN) data the sorted index is exactly what sorting the buffer would
//! produce, so percentiles are bit-identical to the sort-based path.

use crate::error::StatsError;
use crate::percentile::percentile_of_sorted;
use std::collections::VecDeque;

/// A fixed-capacity FIFO window that maintains its samples in sorted order.
///
/// Semantically identical to [`crate::MovingWindow`] for retention —
/// `push` appends and evicts the oldest once full — but the sorted index
/// makes order statistics cheap enough for a per-tick hot path:
///
/// | operation | [`crate::MovingWindow`] | `OrderStatWindow` |
/// |---|---|---|
/// | `push` | O(1) | O(log w) search + O(w) shift |
/// | `percentile` | O(w log w) + alloc | O(1), no alloc |
/// | `max` / `min` | O(w) | O(1) |
///
/// The O(w) memmove inside `push` is a contiguous `copy_within` on a small
/// buffer (the paper's `max_num_samples` is 120), which is far cheaper than
/// re-sorting; the win is removing the comparison sort and the allocation
/// from every read.
///
/// # Examples
///
/// ```
/// use oc_stats::OrderStatWindow;
///
/// let mut w = OrderStatWindow::new(3).unwrap();
/// for x in [5.0, 1.0, 4.0, 2.0] {
///     w.push(x);
/// }
/// // FIFO holds [1, 4, 2]; sorted view is [1, 2, 4].
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.max(), Some(4.0));
/// assert_eq!(w.percentile(50.0).unwrap(), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct OrderStatWindow {
    /// Samples in arrival order (front = oldest).
    buf: VecDeque<f64>,
    /// The same samples in ascending `total_cmp` order.
    sorted: Vec<f64>,
    capacity: usize,
}

impl OrderStatWindow {
    /// Creates a window retaining the `capacity` most recent samples.
    ///
    /// Storage grows on demand (amortized doubling, capped by the
    /// eviction bound at roughly `capacity` slots) instead of reserving
    /// `capacity` up front: per-task windows exist by the million in
    /// fleet-scale serving and most hold far fewer samples than their
    /// capacity, so eager reservation wasted the bulk of per-machine
    /// memory — and page-fault time — at scale.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                what: "window capacity must be positive",
            });
        }
        Ok(OrderStatWindow {
            buf: VecDeque::new(),
            sorted: Vec::new(),
            capacity,
        })
    }

    /// Appends a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.capacity {
            let old = self.buf.pop_front().expect("window is full");
            let idx = self
                .sorted
                .binary_search_by(|v| v.total_cmp(&old))
                .expect("evicted sample is present in the sorted index");
            self.sorted.remove(idx);
        }
        self.buf.push_back(x);
        let idx = match self.sorted.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) | Err(i) => i,
        };
        self.sorted.insert(idx, x);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `p`-th percentile (0..=100) of the retained samples, with linear
    /// interpolation between closest ranks. O(1); does not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when the window is empty or
    /// [`StatsError::InvalidParameter`] for `p` outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        percentile_of_sorted(&self.sorted, p)
    }

    /// Largest retained sample; `None` when empty. O(1).
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Smallest retained sample; `None` when empty. O(1).
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Iterates over retained samples in arrival order, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// The retained samples in ascending order.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(OrderStatWindow::new(0).is_err());
    }

    #[test]
    fn fifo_eviction_keeps_most_recent() {
        let mut w = OrderStatWindow::new(2).unwrap();
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![2.0, 3.0]);
        assert_eq!(w.last(), Some(3.0));
        assert_eq!(w.sorted(), &[2.0, 3.0]);
    }

    #[test]
    fn sorted_index_tracks_duplicates() {
        let mut w = OrderStatWindow::new(4).unwrap();
        for x in [2.0, 2.0, 1.0, 2.0] {
            w.push(x);
        }
        assert_eq!(w.sorted(), &[1.0, 2.0, 2.0, 2.0]);
        w.push(3.0); // Evicts one of the 2.0s.
        assert_eq!(w.sorted(), &[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn signed_zero_eviction_is_consistent() {
        // total_cmp orders -0.0 before 0.0, so evicting -0.0 must not
        // remove a 0.0 entry (and vice versa).
        let mut w = OrderStatWindow::new(2).unwrap();
        w.push(-0.0);
        w.push(0.0);
        w.push(1.0); // Evicts -0.0.
        assert_eq!(w.sorted().len(), 2);
        assert!(w.sorted()[0] == 0.0 && w.sorted()[0].is_sign_positive());
        assert_eq!(w.max(), Some(1.0));
    }

    #[test]
    fn percentile_matches_sorted_definition() {
        let mut w = OrderStatWindow::new(4).unwrap();
        assert!(w.percentile(50.0).is_err());
        for x in [4.0, 2.0, 8.0, 6.0] {
            w.push(x);
        }
        assert_eq!(w.percentile(0.0).unwrap(), 2.0);
        assert_eq!(w.percentile(50.0).unwrap(), 5.0);
        assert_eq!(w.percentile(100.0).unwrap(), 8.0);
        assert!(w.percentile(101.0).is_err());
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(8.0));
    }

    #[test]
    fn empty_window_defaults() {
        let w = OrderStatWindow::new(3).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.max(), None);
        assert_eq!(w.min(), None);
        assert_eq!(w.last(), None);
    }

    #[test]
    fn storage_growth_stops_at_the_eviction_bound() {
        // Lazy construction: an unused window owns no heap at all.
        let mut w = OrderStatWindow::new(8).unwrap();
        assert_eq!(w.sorted.capacity(), 0);
        assert_eq!(w.buf.capacity(), 0);
        // Once full, eviction holds `len` at capacity, so amortized
        // doubling settles and pushes stop reallocating.
        for i in 0..100 {
            w.push((i % 13) as f64);
        }
        let settled = (w.sorted.capacity(), w.buf.capacity());
        for i in 0..1000 {
            w.push((i % 17) as f64);
        }
        assert_eq!((w.sorted.capacity(), w.buf.capacity()), settled);
        assert_eq!(w.len(), 8);
    }
}
