//! Ordinary least squares regression on paired samples.

use crate::error::StatsError;

/// Result of a simple linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl OlsFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = slope * x + intercept` by least squares.
///
/// Used by the `fig3` experiment to reproduce the paper's "slope of 14.1"
/// fit of mean tail latency against bucketed violation rate.
///
/// # Errors
///
/// Returns [`StatsError::MismatchedLengths`] on unequal inputs,
/// [`StatsError::Empty`] with fewer than two points,
/// [`StatsError::NonFinite`] on NaN/inf, and
/// [`StatsError::InvalidParameter`] if all `x` are identical (vertical line).
pub fn ols(xs: &[f64], ys: &[f64]) -> Result<OlsFit, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::MismatchedLengths {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::Empty);
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "all x values identical; slope undefined",
        });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(OlsFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 14.1 * x + 1.0).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 14.1).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 142.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fit_is_reasonable() {
        // Deterministic symmetric noise leaves slope/intercept untouched.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-3);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(
            ols(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert_eq!(ols(&[1.0], &[1.0]), Err(StatsError::Empty));
        assert!(matches!(
            ols(&[1.0, 2.0], &[1.0]),
            Err(StatsError::MismatchedLengths { .. })
        ));
        assert_eq!(
            ols(&[1.0, f64::INFINITY], &[1.0, 2.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn flat_line_r_squared_is_one() {
        let fit = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
