//! Bounded moving windows over recent samples.

use crate::error::StatsError;
use crate::percentile::percentile_of_sorted;
use std::collections::VecDeque;

/// A fixed-capacity window over the most recent samples.
///
/// This is the paper's per-task history buffer: "for each task, we only
/// maintain a moving window to store the most recent samples; we denote the
/// window size by `max_num_samples`" (Section 4). Mean and standard
/// deviation are O(1): the window maintains a running sum plus shifted
/// running moments Σ(x−origin) and Σ(x−origin)², where the origin is pinned
/// to the first sample after each refresh. The shift is what makes the
/// incremental sum-of-squares identity usable here — the textbook ΣX²
/// version loses all precision when the mean is large relative to the
/// spread, which CPU-usage series routinely are, while the shifted moments
/// stay the size of the spread itself.
///
/// All running accumulators are recomputed from scratch periodically
/// (every `REFRESH_EVERY` = 4096 pushes) to bound floating-point drift from the
/// add/subtract updates; the refresh also re-pins the origin, so a series
/// that wanders far from its first value regains a local origin.
///
/// # Examples
///
/// ```
/// use oc_stats::MovingWindow;
///
/// let mut w = MovingWindow::new(3).unwrap();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// // Window holds [2, 3, 4].
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovingWindow {
    buf: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    /// Shift origin for the incremental second moment; the first sample
    /// after each refresh.
    origin: f64,
    /// Σ (x − origin) over the retained samples.
    sum_shifted: f64,
    /// Σ (x − origin)² over the retained samples.
    sumsq_shifted: f64,
    /// Pushes since the last exact refresh of the running accumulators.
    since_refresh: usize,
}

/// Refresh the running accumulators after this many pushes to bound
/// floating-point drift from the add/subtract updates.
const REFRESH_EVERY: usize = 4096;

impl MovingWindow {
    /// Creates a window retaining the `capacity` most recent samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                what: "window capacity must be positive",
            });
        }
        // The buffer grows on demand (amortized doubling, capped by the
        // eviction bound) rather than reserving `capacity` up front: a
        // fleet holds millions of windows that never fill, and eager
        // reservation made window creation the dominant source of
        // fresh-page faults at scale.
        Ok(MovingWindow {
            buf: VecDeque::new(),
            capacity,
            sum: 0.0,
            origin: 0.0,
            sum_shifted: 0.0,
            sumsq_shifted: 0.0,
            since_refresh: 0,
        })
    }

    /// Appends a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.is_empty() {
            self.origin = x;
        }
        if self.buf.len() == self.capacity {
            let old = self.buf.pop_front().expect("window is full");
            self.sum -= old;
            let shifted = old - self.origin;
            self.sum_shifted -= shifted;
            self.sumsq_shifted -= shifted * shifted;
        }
        self.buf.push_back(x);
        self.sum += x;
        let shifted = x - self.origin;
        self.sum_shifted += shifted;
        self.sumsq_shifted += shifted * shifted;
        self.since_refresh += 1;
        if self.since_refresh >= REFRESH_EVERY {
            self.refresh();
        }
    }

    /// Recomputes all running accumulators exactly from the buffer,
    /// re-pinning the shift origin to the oldest retained sample.
    fn refresh(&mut self) {
        self.sum = self.buf.iter().sum();
        self.origin = self.buf.front().copied().unwrap_or(0.0);
        self.sum_shifted = self.buf.iter().map(|x| x - self.origin).sum();
        self.sumsq_shifted = self.buf.iter().map(|x| (x - self.origin).powi(2)).sum();
        self.since_refresh = 0;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the retained samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Population standard deviation of the retained samples; `0.0` when
    /// fewer than two samples are held.
    ///
    /// O(1) on the common path: computed from the shifted running moments
    /// as `var = (Σs² − (Σs)²/n) / n` with `s = x − origin`. The shift
    /// keeps the subtraction between quantities the size of the spread,
    /// not the mean, and the periodic exact refresh bounds accumulator
    /// drift. When the subtraction cancels almost completely — the true
    /// variance is below rounding noise relative to the second moment, as
    /// for a near-constant window — the residual is meaningless, so the
    /// rare degenerate case falls back to the exact two-pass computation.
    pub fn population_std(&self) -> f64 {
        let n = self.buf.len();
        if n < 2 {
            return 0.0;
        }
        let n = n as f64;
        let var = (self.sumsq_shifted - self.sum_shifted * self.sum_shifted / n) / n;
        // f64 has ~2e-16 relative precision; anything this far below the
        // second moment is cancellation noise, not signal.
        let noise_floor = 1e-12 * self.sumsq_shifted.abs() / n;
        if var <= noise_floor {
            let mean = self.mean();
            let exact = self.buf.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            return exact.sqrt();
        }
        var.sqrt()
    }

    /// Largest retained sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::max)
    }

    /// `p`-th percentile (0..=100) of the retained samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when the window is empty or an
    /// invalid-percentile error from the underlying routine.
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        if self.buf.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        percentile_of_sorted(&sorted, p)
    }

    /// Iterates over retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(MovingWindow::new(0).is_err());
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = MovingWindow::new(2).unwrap();
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![2.0, 3.0]);
        assert_eq!(w.last(), Some(3.0));
        assert_eq!(w.mean(), 2.5);
    }

    #[test]
    fn std_matches_welford() {
        use crate::welford::Welford;
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = MovingWindow::new(8).unwrap();
        let mut wf = Welford::new();
        for x in data {
            w.push(x);
            wf.push(x);
        }
        assert!((w.population_std() - wf.population_std()).abs() < 1e-12);
    }

    #[test]
    fn std_after_eviction() {
        let mut w = MovingWindow::new(3).unwrap();
        for x in [100.0, 1.0, 2.0, 3.0] {
            w.push(x);
        }
        // Window is [1, 2, 3]: mean 2, population var 2/3.
        assert_eq!(w.mean(), 2.0);
        assert!((w.population_std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_and_max() {
        let mut w = MovingWindow::new(4).unwrap();
        assert!(w.percentile(50.0).is_err());
        for x in [4.0, 2.0, 8.0, 6.0] {
            w.push(x);
        }
        assert_eq!(w.percentile(50.0).unwrap(), 5.0);
        assert_eq!(w.max(), Some(8.0));
    }

    #[test]
    fn max_is_none_when_empty() {
        // Regression: this used to return -inf, which silently poisoned any
        // downstream comparison or subtraction.
        let mut w = MovingWindow::new(2).unwrap();
        assert_eq!(w.max(), None);
        w.push(5.0);
        assert_eq!(w.max(), Some(5.0));
        w.push(1.0);
        w.push(2.0); // Evicts the 5.0.
        assert_eq!(w.max(), Some(2.0));
    }

    #[test]
    fn incremental_std_matches_two_pass_across_refresh() {
        // Push enough to cross the REFRESH_EVERY boundary several times and
        // check the O(1) std against an exact two-pass recomputation.
        let mut w = MovingWindow::new(32).unwrap();
        for i in 0..3 * REFRESH_EVERY + 17 {
            let x = ((i * 37) % 113) as f64 * 0.25 - 10.0;
            w.push(x);
            if i % 997 == 0 || i > 3 * REFRESH_EVERY {
                let held: Vec<f64> = w.iter().collect();
                let mean = held.iter().sum::<f64>() / held.len() as f64;
                let var = held.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / held.len() as f64;
                assert!(
                    (w.population_std() - var.sqrt()).abs() < 1e-9,
                    "push {i}: incremental {} vs exact {}",
                    w.population_std(),
                    var.sqrt()
                );
            }
        }
    }

    #[test]
    fn no_drift_under_large_offset() {
        let mut w = MovingWindow::new(16).unwrap();
        for i in 0..100_000 {
            w.push(1e9 + (i % 7) as f64);
        }
        let exact: Vec<f64> = w.iter().collect();
        let mean = exact.iter().sum::<f64>() / exact.len() as f64;
        let var = exact.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / exact.len() as f64;
        assert!((w.population_std() - var.sqrt()).abs() < 1e-6);
        assert!((w.mean() - mean).abs() < 1e-3);
    }

    #[test]
    fn empty_window_defaults() {
        let w = MovingWindow::new(4).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_std(), 0.0);
        assert_eq!(w.last(), None);
        assert_eq!(w.capacity(), 4);
    }
}
