//! Bounded moving windows over recent samples.

use crate::error::StatsError;
use crate::percentile::percentile_of_sorted;
use std::collections::VecDeque;

/// A fixed-capacity window over the most recent samples.
///
/// This is the paper's per-task history buffer: "for each task, we only
/// maintain a moving window to store the most recent samples; we denote the
/// window size by `max_num_samples`" (Section 4). Windows are deliberately
/// small (10 h of 5-minute samples is 120 entries), so the standard
/// deviation is computed exactly over the buffer with a shifted mean — the
/// incremental sum-of-squares shortcut loses all precision when the mean is
/// large relative to the spread, which CPU-usage series routinely are.
///
/// The running sum (used for the O(1) mean) is recomputed from scratch
/// periodically to bound floating-point drift.
///
/// # Examples
///
/// ```
/// use oc_stats::MovingWindow;
///
/// let mut w = MovingWindow::new(3).unwrap();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// // Window holds [2, 3, 4].
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovingWindow {
    buf: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    /// Pushes since the last exact refresh of `sum`.
    since_refresh: usize,
}

/// Refresh the running sum after this many pushes to bound floating-point
/// drift from the add/subtract updates.
const REFRESH_EVERY: usize = 4096;

impl MovingWindow {
    /// Creates a window retaining the `capacity` most recent samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                what: "window capacity must be positive",
            });
        }
        Ok(MovingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            since_refresh: 0,
        })
    }

    /// Appends a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.capacity {
            let old = self.buf.pop_front().expect("window is full");
            self.sum -= old;
        }
        self.buf.push_back(x);
        self.sum += x;
        self.since_refresh += 1;
        if self.since_refresh >= REFRESH_EVERY {
            self.sum = self.buf.iter().sum();
            self.since_refresh = 0;
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the retained samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Population standard deviation of the retained samples; `0.0` when
    /// fewer than two samples are held. Exact (two-pass) computation.
    pub fn population_std(&self) -> f64 {
        let n = self.buf.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.buf.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt()
    }

    /// Largest retained sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.buf.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `p`-th percentile (0..=100) of the retained samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when the window is empty or an
    /// invalid-percentile error from the underlying routine.
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        if self.buf.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        percentile_of_sorted(&sorted, p)
    }

    /// Iterates over retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(MovingWindow::new(0).is_err());
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = MovingWindow::new(2).unwrap();
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![2.0, 3.0]);
        assert_eq!(w.last(), Some(3.0));
        assert_eq!(w.mean(), 2.5);
    }

    #[test]
    fn std_matches_welford() {
        use crate::welford::Welford;
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = MovingWindow::new(8).unwrap();
        let mut wf = Welford::new();
        for x in data {
            w.push(x);
            wf.push(x);
        }
        assert!((w.population_std() - wf.population_std()).abs() < 1e-12);
    }

    #[test]
    fn std_after_eviction() {
        let mut w = MovingWindow::new(3).unwrap();
        for x in [100.0, 1.0, 2.0, 3.0] {
            w.push(x);
        }
        // Window is [1, 2, 3]: mean 2, population var 2/3.
        assert_eq!(w.mean(), 2.0);
        assert!((w.population_std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_and_max() {
        let mut w = MovingWindow::new(4).unwrap();
        assert!(w.percentile(50.0).is_err());
        for x in [4.0, 2.0, 8.0, 6.0] {
            w.push(x);
        }
        assert_eq!(w.percentile(50.0).unwrap(), 5.0);
        assert_eq!(w.max(), 8.0);
    }

    #[test]
    fn no_drift_under_large_offset() {
        let mut w = MovingWindow::new(16).unwrap();
        for i in 0..100_000 {
            w.push(1e9 + (i % 7) as f64);
        }
        let exact: Vec<f64> = w.iter().collect();
        let mean = exact.iter().sum::<f64>() / exact.len() as f64;
        let var = exact.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / exact.len() as f64;
        assert!((w.population_std() - var.sqrt()).abs() < 1e-6);
        assert!((w.mean() - mean).abs() < 1e-3);
    }

    #[test]
    fn empty_window_defaults() {
        let w = MovingWindow::new(4).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_std(), 0.0);
        assert_eq!(w.last(), None);
        assert_eq!(w.capacity(), 4);
    }
}
