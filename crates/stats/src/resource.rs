//! Fixed-arity resource vectors and structure-of-arrays window bundles.
//!
//! The overcommit machinery is resource-agnostic: a predictor that bounds
//! the peak of a sum of CPU series bounds the peak of a sum of memory
//! series just as well. [`ResourceVec`] is the small fixed-arity value
//! type that carries one sample per tracked resource (lane), and
//! [`MovingWindowVec`] / [`OrderStatWindowVec`] bundle one scalar window
//! per lane in SoA layout — each lane keeps its own contiguous buffer, so
//! the incremental per-lane hot path is byte-for-byte the proven scalar
//! path and stays vectorizable.
//!
//! Lane 0 is CPU by convention ([`CPU`]); lane 1 is memory ([`MEM`]).
//! Because a lane of a vector window *is* a scalar window, pushing only
//! lane-0 values produces results bit-identical to the scalar code the
//! goldens were recorded against.

use crate::error::StatsError;
use crate::moving::MovingWindow;
use crate::order_stat::OrderStatWindow;

/// Lane index of the CPU resource (always lane 0).
pub const CPU: usize = 0;

/// Lane index of the memory resource.
pub const MEM: usize = 1;

/// Number of resource lanes tracked by the stack today.
pub const NUM_RESOURCES: usize = 2;

/// Human-readable lane names, indexed by lane (`["cpu", "mem"]`).
///
/// Used for metric names (`sim.violations.cpu`), CSV headers, and the
/// wire protocol's multi-resource form.
pub const RESOURCE_NAMES: [&str; NUM_RESOURCES] = ["cpu", "mem"];

/// A fixed-arity vector of per-resource values: one `f64` lane per
/// tracked resource.
///
/// Arithmetic is elementwise and lane count is a compile-time constant,
/// so the compiler can keep the whole value in registers — there is no
/// heap indirection and no dynamic dispatch on the hot path.
///
/// # Examples
///
/// ```
/// use oc_stats::resource::{ResourceVec, Res2, CPU, MEM};
///
/// let usage = Res2::from_lanes([0.5, 0.25]);
/// let limit = Res2::from_lanes([0.6, 0.3]);
/// assert_eq!(usage.lane(CPU), 0.5);
/// assert_eq!(usage.lane(MEM), 0.25);
///
/// // Elementwise max is how per-lane peaks combine.
/// let peak = usage.max(Res2::from_lanes([0.4, 0.4]));
/// assert_eq!(peak.lanes(), &[0.5, 0.4]);
///
/// // Worst-lane admission: every lane must fit.
/// assert!(usage.all_le(&limit));
/// assert!(!limit.all_le(&usage));
///
/// // A scalar sample promotes to a vector with zeroed other lanes.
/// let scalar = ResourceVec::<2>::cpu_only(0.7);
/// assert_eq!(scalar.lanes(), &[0.7, 0.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVec<const N: usize> {
    lanes: [f64; N],
}

/// The two-lane (CPU + memory) vector used throughout the stack.
pub type Res2 = ResourceVec<NUM_RESOURCES>;

impl<const N: usize> ResourceVec<N> {
    /// All lanes zero.
    pub const ZERO: Self = Self { lanes: [0.0; N] };

    /// Builds a vector from explicit per-lane values.
    pub const fn from_lanes(lanes: [f64; N]) -> Self {
        Self { lanes }
    }

    /// Every lane set to `x`.
    pub const fn splat(x: f64) -> Self {
        Self { lanes: [x; N] }
    }

    /// A CPU-only vector: lane 0 set to `x`, all other lanes zero.
    ///
    /// This is the canonical promotion of a scalar sample into the
    /// vector world and keeps lane 0 bit-identical to scalar code.
    pub const fn cpu_only(x: f64) -> Self {
        let mut lanes = [0.0; N];
        lanes[CPU] = x;
        Self { lanes }
    }

    /// Value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn lane(&self, i: usize) -> f64 {
        self.lanes[i]
    }

    /// Sets lane `i` to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn set_lane(&mut self, i: usize, x: f64) {
        self.lanes[i] = x;
    }

    /// All lanes as a slice (lane order).
    pub fn lanes(&self) -> &[f64; N] {
        &self.lanes
    }

    /// Elementwise maximum.
    pub fn max(self, other: Self) -> Self {
        let mut lanes = self.lanes;
        for (a, b) in lanes.iter_mut().zip(other.lanes) {
            *a = a.max(b);
        }
        Self { lanes }
    }

    /// Every lane scaled by `k`.
    pub fn scale(self, k: f64) -> Self {
        let mut lanes = self.lanes;
        for a in lanes.iter_mut() {
            *a *= k;
        }
        Self { lanes }
    }

    /// `true` when every lane of `self` is `<=` the matching lane of
    /// `other` — the worst-lane admission rule: a machine fits only if it
    /// fits in *every* resource.
    pub fn all_le(&self, other: &Self) -> bool {
        self.lanes.iter().zip(&other.lanes).all(|(a, b)| a <= b)
    }

    /// The largest lane value (the "worst" lane for headroom purposes).
    pub fn worst(&self) -> f64 {
        self.lanes.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the largest lane value (first on ties).
    pub fn worst_lane(&self) -> usize {
        let mut best = 0;
        for i in 1..N {
            if self.lanes[i] > self.lanes[best] {
                best = i;
            }
        }
        best
    }

    /// `true` when every lane is finite.
    pub fn is_finite(&self) -> bool {
        self.lanes.iter().all(|x| x.is_finite())
    }
}

impl<const N: usize> Default for ResourceVec<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

/// Elementwise sum.
impl<const N: usize> std::ops::Add for ResourceVec<N> {
    type Output = Self;
    fn add(mut self, other: Self) -> Self {
        for (a, b) in self.lanes.iter_mut().zip(other.lanes) {
            *a += b;
        }
        self
    }
}

/// Elementwise difference.
impl<const N: usize> std::ops::Sub for ResourceVec<N> {
    type Output = Self;
    fn sub(mut self, other: Self) -> Self {
        for (a, b) in self.lanes.iter_mut().zip(other.lanes) {
            *a -= b;
        }
        self
    }
}

impl<const N: usize> std::ops::Index<usize> for ResourceVec<N> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.lanes[i]
    }
}

/// A bundle of `N` independent [`MovingWindow`]s, one per resource lane,
/// in structure-of-arrays layout.
///
/// Each lane owns its own contiguous buffer, so the per-lane incremental
/// update is exactly the scalar [`MovingWindow`] code — lane 0 of a
/// vector window is bit-identical to a scalar window fed the same
/// values. Both scalar windows allocate lazily, so a lane that never
/// sees a push costs only the empty struct.
///
/// # Examples
///
/// ```
/// use oc_stats::resource::{MovingWindowVec, Res2, CPU, MEM};
///
/// let mut w = MovingWindowVec::<2>::new(4).unwrap();
/// w.push(Res2::from_lanes([0.5, 0.25]));
/// w.push(Res2::from_lanes([0.7, 0.35]));
/// assert_eq!(w.lane(CPU).mean(), (0.5 + 0.7) / 2.0);
/// assert_eq!(w.lane(MEM).max(), Some(0.35));
/// ```
#[derive(Debug, Clone)]
pub struct MovingWindowVec<const N: usize> {
    lanes: [MovingWindow; N],
}

impl<const N: usize> MovingWindowVec<N> {
    /// Creates a vector window retaining the `capacity` most recent
    /// samples per lane.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        // Validate once; per-lane construction cannot fail afterwards.
        MovingWindow::new(capacity)?;
        Ok(Self {
            lanes: std::array::from_fn(|_| {
                MovingWindow::new(capacity).expect("capacity already validated")
            }),
        })
    }

    /// Pushes one sample per lane.
    pub fn push(&mut self, v: ResourceVec<N>) {
        for (w, x) in self.lanes.iter_mut().zip(v.lanes) {
            w.push(x);
        }
    }

    /// Read access to lane `i`'s scalar window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn lane(&self, i: usize) -> &MovingWindow {
        &self.lanes[i]
    }

    /// Mutable access to lane `i`'s scalar window, for callers that
    /// update lanes at different cadences (e.g. a scalar-only tick that
    /// must keep lane 0 bit-identical while other lanes idle).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn lane_mut(&mut self, i: usize) -> &mut MovingWindow {
        &mut self.lanes[i]
    }

    /// Number of samples in lane 0 (lanes pushed together stay in step).
    pub fn len(&self) -> usize {
        self.lanes[CPU].len()
    }

    /// `true` when lane 0 holds no samples.
    pub fn is_empty(&self) -> bool {
        self.lanes[CPU].is_empty()
    }

    /// The configured per-lane capacity.
    pub fn capacity(&self) -> usize {
        self.lanes[CPU].capacity()
    }

    /// Per-lane means as a vector.
    pub fn mean(&self) -> ResourceVec<N> {
        ResourceVec::from_lanes(std::array::from_fn(|i| self.lanes[i].mean()))
    }
}

/// A bundle of `N` independent [`OrderStatWindow`]s, one per resource
/// lane, in structure-of-arrays layout.
///
/// Same contract as [`MovingWindowVec`]: each lane is the proven scalar
/// window, so per-lane percentile/min/max reads stay O(1) and lane 0 is
/// bit-identical to scalar code fed the same values.
///
/// # Examples
///
/// ```
/// use oc_stats::resource::{OrderStatWindowVec, Res2, CPU, MEM};
///
/// let mut w = OrderStatWindowVec::<2>::new(3).unwrap();
/// for (c, m) in [(5.0, 0.1), (1.0, 0.3), (4.0, 0.2)] {
///     w.push(Res2::from_lanes([c, m]));
/// }
/// assert_eq!(w.lane(CPU).percentile(50.0).unwrap(), 4.0);
/// assert_eq!(w.lane(MEM).max(), Some(0.3));
/// ```
#[derive(Debug, Clone)]
pub struct OrderStatWindowVec<const N: usize> {
    lanes: [OrderStatWindow; N],
}

impl<const N: usize> OrderStatWindowVec<N> {
    /// Creates a vector window retaining the `capacity` most recent
    /// samples per lane.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        OrderStatWindow::new(capacity)?;
        Ok(Self {
            lanes: std::array::from_fn(|_| {
                OrderStatWindow::new(capacity).expect("capacity already validated")
            }),
        })
    }

    /// Pushes one sample per lane.
    pub fn push(&mut self, v: ResourceVec<N>) {
        for (w, x) in self.lanes.iter_mut().zip(v.lanes) {
            w.push(x);
        }
    }

    /// Read access to lane `i`'s scalar window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn lane(&self, i: usize) -> &OrderStatWindow {
        &self.lanes[i]
    }

    /// Mutable access to lane `i`'s scalar window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn lane_mut(&mut self, i: usize) -> &mut OrderStatWindow {
        &mut self.lanes[i]
    }

    /// Number of samples in lane 0 (lanes pushed together stay in step).
    pub fn len(&self) -> usize {
        self.lanes[CPU].len()
    }

    /// `true` when lane 0 holds no samples.
    pub fn is_empty(&self) -> bool {
        self.lanes[CPU].is_empty()
    }

    /// The configured per-lane capacity.
    pub fn capacity(&self) -> usize {
        self.lanes[CPU].capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_only_zeroes_other_lanes() {
        let v = Res2::cpu_only(0.7);
        assert_eq!(v.lane(CPU), 0.7);
        assert_eq!(v.lane(MEM), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Res2::from_lanes([1.0, 4.0]);
        let b = Res2::from_lanes([3.0, 2.0]);
        assert_eq!(a.max(b).lanes(), &[3.0, 4.0]);
        assert_eq!((a + b).lanes(), &[4.0, 6.0]);
        assert_eq!((b - a).lanes(), &[2.0, -2.0]);
        assert_eq!(a.scale(2.0).lanes(), &[2.0, 8.0]);
        assert_eq!(a.worst(), 4.0);
        assert_eq!(a.worst_lane(), MEM);
        assert_eq!(b.worst_lane(), CPU);
    }

    #[test]
    fn all_le_is_worst_lane_admission() {
        let usage = Res2::from_lanes([0.5, 0.25]);
        let cap = Res2::from_lanes([1.0, 0.3]);
        assert!(usage.all_le(&cap));
        // Memory lane over even though CPU fits: must be rejected.
        let mem_hog = Res2::from_lanes([0.5, 0.4]);
        assert!(!mem_hog.all_le(&cap));
    }

    #[test]
    fn vector_window_lane0_matches_scalar() {
        let xs = [5.0, 1.0, 4.0, 2.0, 9.0, 3.0];
        let mut scalar = OrderStatWindow::new(4).unwrap();
        let mut vec = OrderStatWindowVec::<NUM_RESOURCES>::new(4).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            scalar.push(x);
            vec.push(Res2::from_lanes([x, i as f64 * 0.1]));
            assert_eq!(
                scalar.percentile(75.0).unwrap().to_bits(),
                vec.lane(CPU).percentile(75.0).unwrap().to_bits()
            );
        }
        assert_eq!(scalar.max(), vec.lane(CPU).max());
        assert_eq!(vec.lane(MEM).len(), 4);
    }

    #[test]
    fn moving_window_vec_lane0_matches_scalar() {
        let xs = [0.5, 0.7, 0.2, 0.9, 0.4];
        let mut scalar = MovingWindow::new(3).unwrap();
        let mut vec = MovingWindowVec::<NUM_RESOURCES>::new(3).unwrap();
        for &x in &xs {
            scalar.push(x);
            vec.push(Res2::from_lanes([x, x * 0.5]));
            assert_eq!(scalar.mean().to_bits(), vec.lane(CPU).mean().to_bits());
            assert_eq!(
                scalar.population_std().to_bits(),
                vec.lane(CPU).population_std().to_bits()
            );
        }
        assert_eq!(
            vec.mean().lane(MEM).to_bits(),
            vec.lane(MEM).mean().to_bits()
        );
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(MovingWindowVec::<2>::new(0).is_err());
        assert!(OrderStatWindowVec::<2>::new(0).is_err());
    }
}
