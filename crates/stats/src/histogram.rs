//! Fixed-width histograms.

use crate::error::StatsError;

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
///
/// Used for quick distribution sanity checks in the trace generator tests
/// and for compact textual output in the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi`, both are
    /// finite, and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() || bins == 0 {
            return Err(StatsError::InvalidParameter {
                what: "histogram needs finite lo < hi and at least one bin",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records every observation in the iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts, lowest bin first.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(left_edge, right_edge, count)` for each bin.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let left = self.lo + i as f64 * width;
            (left, left + width, c)
        })
    }

    /// Fraction of in-range mass at or below the right edge of each bin;
    /// empty if no in-range observation was recorded.
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / in_range as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn binning_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([-0.1, 0.0, 0.1, 0.3, 0.6, 0.99, 1.0, 2.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn bin_edges() {
        let h = Histogram::new(0.0, 2.0, 2).unwrap();
        let edges: Vec<_> = h.bins().collect();
        assert_eq!(edges, vec![(0.0, 1.0, 0), (1.0, 2.0, 0)]);
    }

    #[test]
    fn cumulative_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend((0..10).map(|i| i as f64));
        let cum = h.cumulative_fractions();
        assert_eq!(cum.len(), 5);
        assert!((cum[4] - 1.0).abs() < 1e-12);
        assert!((cum[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_cumulative_is_empty() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert!(h.cumulative_fractions().is_empty());
    }
}
