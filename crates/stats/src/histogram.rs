//! Fixed-width histograms.

use crate::error::StatsError;

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
///
/// Used for quick distribution sanity checks in the trace generator tests
/// and for compact textual output in the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi`, both are
    /// finite, and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() || bins == 0 {
            return Err(StatsError::InvalidParameter {
                what: "histogram needs finite lo < hi and at least one bin",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records one observation.
    ///
    /// A value exactly on an interior bin edge (`lo + i * width`, the
    /// edges [`Histogram::bins`] reports) counts in the bin it opens —
    /// bin `i`, whose range is `[lo + i*width, lo + (i+1)*width)`.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let width = (self.hi - self.lo) / n as f64;
            let frac = (x - self.lo) / (self.hi - self.lo);
            let mut idx = ((frac * n as f64) as usize).min(n - 1);
            // The fraction rounds: a value sitting exactly on a
            // documented edge can land one bin off either way. Snap
            // against the same edges `bins()` reports so placement and
            // documentation always agree.
            if idx + 1 < n && x >= self.lo + (idx + 1) as f64 * width {
                idx += 1;
            } else if idx > 0 && x < self.lo + idx as f64 * width {
                idx -= 1;
            }
            self.bins[idx] += 1;
        }
    }

    /// Records the same observation `n` times in one bin update.
    /// Equivalent to calling [`Histogram::push`] `n` times.
    pub fn push_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if x < self.lo {
            self.underflow += n;
        } else if x >= self.hi {
            self.overflow += n;
        } else {
            let bins = self.bins.len();
            let width = (self.hi - self.lo) / bins as f64;
            let frac = (x - self.lo) / (self.hi - self.lo);
            let mut idx = ((frac * bins as f64) as usize).min(bins - 1);
            // Same edge-snapping as `push` so both placements agree.
            if idx + 1 < bins && x >= self.lo + (idx + 1) as f64 * width {
                idx += 1;
            } else if idx > 0 && x < self.lo + idx as f64 * width {
                idx -= 1;
            }
            self.bins[idx] += n;
        }
    }

    /// Records every observation in the iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts, lowest bin first.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(left_edge, right_edge, count)` for each bin.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let left = self.lo + i as f64 * width;
            (left, left + width, c)
        })
    }

    /// Lower edge of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the binned range. A quantile answer equal to this
    /// edge means the target rank fell into the overflow mass; callers
    /// that track an exact maximum should substitute it.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interpolated quantile over **all** recorded mass, `p` in
    /// `[0, 100]`.
    ///
    /// The mass of each bin is treated as uniformly spread over the bin's
    /// width, so in-range answers are accurate to within one bin width.
    /// Out-of-range observations participate in the rank but clamp to the
    /// range edges: a target landing in the underflow mass answers `lo`,
    /// one landing in the overflow mass answers `hi`. (Ignoring the
    /// overflow mass — as this method once did — let a heavy tail report
    /// a p99 far *below* the mean, an impossible pair; callers that track
    /// the exact maximum can substitute it whenever the answer is `hi`.)
    ///
    /// This is what the serving layer uses for p50/p99 service-latency
    /// reporting: bounded memory per shard regardless of request volume.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p` is outside
    /// `[0, 100]` and [`StatsError::Empty`] if nothing has been recorded.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(0.0..=100.0).contains(&p) {
            return Err(StatsError::InvalidParameter {
                what: "quantile p must be in [0, 100]",
            });
        }
        if self.total == 0 {
            return Err(StatsError::Empty);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let target = p / 100.0 * self.total as f64;
        if self.underflow > 0 && self.underflow as f64 >= target {
            return Ok(self.lo);
        }
        let mut acc = self.underflow as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let c = c as f64;
            if c > 0.0 && acc + c >= target {
                let left = self.lo + i as f64 * width;
                let frac = ((target - acc) / c).clamp(0.0, 1.0);
                return Ok(left + frac * width);
            }
            acc += c;
        }
        if self.overflow > 0 {
            return Ok(self.hi);
        }
        // p == 100 with trailing empty bins: right edge of the last
        // occupied bin (or `lo` if only underflow was ever recorded).
        match self.bins.iter().rposition(|&c| c > 0) {
            Some(last) => Ok(self.lo + (last + 1) as f64 * width),
            None => Ok(self.lo),
        }
    }

    /// Merges another histogram's counts into this one.
    ///
    /// Used to aggregate per-shard latency histograms into one service-wide
    /// distribution without losing bin resolution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both histograms have
    /// the same range and bin count.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), StatsError> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(StatsError::InvalidParameter {
                what: "histogram merge needs identical lo/hi/bin-count",
            });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        Ok(())
    }

    /// Fraction of in-range mass at or below the right edge of each bin;
    /// empty if no in-range observation was recorded.
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / in_range as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn binning_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([-0.1, 0.0, 0.1, 0.3, 0.6, 0.99, 1.0, 2.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn push_respects_documented_bin_edges() {
        // Regression: 7.0 sits exactly on the documented edge between
        // bins 6 and 7 of [0,10)x10, but (7.0/10.0)*10 rounds down to
        // 6.999..., so it was counted in bin 6.
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.push(7.0);
        assert_eq!(h.counts()[7], 1, "{:?}", h.counts());

        // Exhaustive over awkward bin counts: every documented left edge
        // must open its own bin.
        for bins in [3usize, 7, 10, 13, 4000] {
            let edges: Vec<f64> = Histogram::new(0.0, 20_000.0, bins)
                .unwrap()
                .bins()
                .map(|(left, _, _)| left)
                .collect();
            for (i, &left) in edges.iter().enumerate() {
                let mut h = Histogram::new(0.0, 20_000.0, bins).unwrap();
                h.push(left);
                assert_eq!(
                    h.counts()[i],
                    1,
                    "bins={bins}: edge {left} (bin {i}) landed elsewhere"
                );
            }
        }
    }

    #[test]
    fn bin_edges() {
        let h = Histogram::new(0.0, 2.0, 2).unwrap();
        let edges: Vec<_> = h.bins().collect();
        assert_eq!(edges, vec![(0.0, 1.0, 0), (1.0, 2.0, 0)]);
    }

    #[test]
    fn cumulative_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend((0..10).map(|i| i as f64));
        let cum = h.cumulative_fractions();
        assert_eq!(cum.len(), 5);
        assert!((cum[4] - 1.0).abs() < 1e-12);
        assert!((cum[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_cumulative_is_empty() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert!(h.cumulative_fractions().is_empty());
    }

    #[test]
    fn quantile_interpolates_within_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend((0..100).map(|i| (i as f64) / 10.0)); // 10 per bin
                                                       // Uniform mass: quantiles are (close to) the identity.
        for p in [10.0, 25.0, 50.0, 90.0] {
            let q = h.quantile(p).unwrap();
            assert!((q - p / 10.0).abs() <= 1.0 + 1e-9, "p{p}: {q}");
        }
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert_eq!(h.quantile(100.0).unwrap(), 10.0);
    }

    #[test]
    fn quantile_single_bin_mass() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for _ in 0..7 {
            h.push(42.5);
        }
        // All mass in bin [42, 43): every quantile lands inside it.
        for p in [0.0, 50.0, 99.0, 100.0] {
            let q = h.quantile(p).unwrap();
            assert!((42.0..=43.0).contains(&q), "p{p}: {q}");
        }
    }

    #[test]
    fn quantile_clamps_out_of_range_mass_to_the_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.extend([-5.0, 0.55, 7.0, 9.0]);
        // Rank 2 of 4 lands in the [0.5, 0.6) bin; the underflow sample
        // fills rank 1 and the two overflow samples ranks 3-4.
        let q = h.quantile(50.0).unwrap();
        assert!((0.5..=0.6).contains(&q), "{q}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0, "underflow clamps to lo");
        assert_eq!(h.quantile(99.0).unwrap(), 1.0, "overflow clamps to hi");
    }

    /// Regression: a tail past `hi` must raise high quantiles to the
    /// range ceiling, not silently vanish from the rank. The pre-fix
    /// in-range-only mass let cluster-scale service latencies report a
    /// mean 18x above p99.
    #[test]
    fn quantile_counts_overflow_mass() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        // 40% of the mass beyond the range: p99 (and p61+) is saturated.
        for _ in 0..60 {
            h.push(10.5);
        }
        for _ in 0..40 {
            h.push(1_000.0);
        }
        assert!((10.0..=11.0).contains(&h.quantile(50.0).unwrap()));
        assert_eq!(h.quantile(99.0).unwrap(), 100.0);
        assert_eq!(h.quantile(100.0).unwrap(), 100.0);
        // All-overflow mass is not "empty": every quantile is the ceiling.
        let mut all_over = Histogram::new(0.0, 1.0, 4).unwrap();
        all_over.push(50.0);
        assert_eq!(all_over.quantile(50.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_rejects_bad_input() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.quantile(50.0), Err(StatsError::Empty));
        let mut h = h;
        h.push(0.5);
        assert!(matches!(
            h.quantile(-1.0),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            h.quantile(101.0),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 4).unwrap();
        a.extend([-0.5, 0.1, 0.6]);
        b.extend([0.1, 0.9, 2.0]);
        a.merge(&b).unwrap();
        assert_eq!(a.counts(), &[2, 0, 1, 1]);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn merge_rejects_mismatched_shape() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let b = Histogram::new(0.0, 2.0, 4).unwrap();
        assert!(a.merge(&b).is_err());
        let c = Histogram::new(0.0, 1.0, 8).unwrap();
        assert!(a.merge(&c).is_err());
    }
}
