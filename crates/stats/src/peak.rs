//! Sliding-window peak: O(1) amortized push, O(1) max read.
//!
//! The memory lane of the resource vector needs exactly one order
//! statistic per task — the windowed peak — because memory is
//! incompressible: a machine that runs out of memory kills tasks rather
//! than throttling them, so admission must cover the recent *peak*
//! demand, not an interpolated percentile of it. Maintaining a full
//! [`crate::OrderStatWindow`] for that one read would double the
//! dominant cost of the vectorized observe path (two binary searches
//! plus two memmoves per sample per lane); [`PeakWindow`] answers the
//! same question with a classic monotonic deque instead — every sample
//! enters and leaves the deque at most once, so a push is O(1)
//! amortized and never moves more than a handful of entries.

use crate::error::StatsError;
use std::collections::VecDeque;

/// A fixed-capacity FIFO window that tracks only its maximum.
///
/// Retention semantics match [`crate::MovingWindow`] and
/// [`crate::OrderStatWindow`]: `push` appends a sample and evicts the
/// oldest once `capacity` samples are retained. Only the window maximum
/// is readable — that is the point: dropping the full sorted index is
/// what makes the second resource lane almost free on the hot path.
///
/// | operation | [`crate::OrderStatWindow`] | `PeakWindow` |
/// |---|---|---|
/// | `push` | O(log w) search + O(w) shift | O(1) amortized |
/// | `max` | O(1) | O(1) |
/// | arbitrary percentile | O(1) | not supported |
///
/// Ordering uses [`f64::total_cmp`], so signed zeros and (defensively)
/// NaNs behave deterministically, exactly as in `OrderStatWindow`.
///
/// # Examples
///
/// ```
/// use oc_stats::PeakWindow;
///
/// let mut w = PeakWindow::new(3).unwrap();
/// for x in [5.0, 1.0, 4.0, 2.0] {
///     w.push(x);
/// }
/// // FIFO retains [1, 4, 2]: the 5.0 peak has aged out.
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.max(), Some(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct PeakWindow {
    /// `(sequence, value)` candidates, values strictly decreasing from
    /// front to back; the front is the current window maximum.
    deque: VecDeque<(u64, f64)>,
    /// Samples pushed over the window's lifetime.
    pushed: u64,
    capacity: usize,
}

impl PeakWindow {
    /// Creates a window retaining the `capacity` most recent samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                what: "window capacity must be positive",
            });
        }
        Ok(PeakWindow {
            deque: VecDeque::new(),
            pushed: 0,
            capacity,
        })
    }

    /// Appends a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        let seq = self.pushed;
        self.pushed += 1;
        // A new sample dominates every older sample that is <= it: those
        // can never be the maximum again while `x` is retained.
        while let Some(&(_, back)) = self.deque.back() {
            if back.total_cmp(&x) != std::cmp::Ordering::Greater {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((seq, x));
        // Drop front candidates that have aged out of the window.
        while let Some(&(front_seq, _)) = self.deque.front() {
            if front_seq + self.capacity as u64 <= seq {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        (self.pushed.min(self.capacity as u64)) as usize
    }

    /// Returns `true` if no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest retained sample; `None` when empty. O(1).
    pub fn max(&self) -> Option<f64> {
        self.deque.front().map(|&(_, x)| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(PeakWindow::new(0).is_err());
    }

    #[test]
    fn empty_window_defaults() {
        let w = PeakWindow::new(3).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn peak_ages_out() {
        let mut w = PeakWindow::new(2).unwrap();
        w.push(9.0);
        assert_eq!(w.max(), Some(9.0));
        w.push(1.0);
        assert_eq!(w.max(), Some(9.0));
        w.push(2.0); // Evicts the 9.0.
        assert_eq!(w.max(), Some(2.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn matches_order_stat_window_max() {
        // The deque must agree with the full sorted index on every
        // prefix of an adversarial stream (rises, falls, duplicates).
        let mut peak = PeakWindow::new(7).unwrap();
        let mut full = crate::OrderStatWindow::new(7).unwrap();
        let stream: Vec<f64> = (0u64..200)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
                (h % 13) as f64 / 4.0
            })
            .collect();
        for &x in &stream {
            peak.push(x);
            full.push(x);
            assert_eq!(peak.max(), full.max());
            assert_eq!(peak.len(), full.len());
        }
    }

    #[test]
    fn signed_zero_and_duplicates_are_deterministic() {
        let mut w = PeakWindow::new(3).unwrap();
        w.push(-0.0);
        w.push(0.0);
        assert!(w.max().unwrap() == 0.0 && w.max().unwrap().is_sign_positive());
        w.push(0.0);
        w.push(0.0);
        assert_eq!(w.max(), Some(0.0));
        assert_eq!(w.len(), 3);
    }
}
