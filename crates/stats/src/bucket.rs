//! Bucketed error-bar summaries of paired data.
//!
//! Figure 3(d) of the paper groups machines into violation-rate buckets of
//! width 0.005 and plots the mean ± std of normalized tail latency per
//! bucket, cutting the x-axis at the first bucket with fewer than 50
//! machines. [`Bucketed`] reproduces exactly that transformation.

use crate::error::StatsError;
use crate::welford::Welford;

/// Summary of one x-axis bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStat {
    /// Left edge of the bucket (inclusive).
    pub lo: f64,
    /// Right edge of the bucket (exclusive).
    pub hi: f64,
    /// Number of pairs falling in the bucket.
    pub count: u64,
    /// Mean of the y values in the bucket.
    pub mean: f64,
    /// Population standard deviation of the y values in the bucket.
    pub std: f64,
}

impl BucketStat {
    /// Bucket midpoint, the conventional x coordinate for error-bar plots.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Groups `(x, y)` pairs into fixed-width x buckets starting at `origin`.
#[derive(Debug, Clone)]
pub struct Bucketed {
    origin: f64,
    width: f64,
    buckets: Vec<Welford>,
}

impl Bucketed {
    /// Creates an empty bucketing with buckets `[origin + k·width,
    /// origin + (k+1)·width)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `width > 0` and both
    /// arguments are finite.
    pub fn new(origin: f64, width: f64) -> Result<Self, StatsError> {
        if !(width > 0.0) || !origin.is_finite() || !width.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "bucket width must be positive and finite",
            });
        }
        Ok(Bucketed {
            origin,
            width,
            buckets: Vec::new(),
        })
    }

    /// Adds a pair; `x` below `origin` clamps into the first bucket.
    pub fn push(&mut self, x: f64, y: f64) {
        let idx = if x <= self.origin {
            0
        } else {
            ((x - self.origin) / self.width).floor() as usize
        };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Welford::new());
        }
        self.buckets[idx].push(y);
    }

    /// Adds every pair in the iterator.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = (f64, f64)>) {
        for (x, y) in pairs {
            self.push(x, y);
        }
    }

    /// Summaries of all non-empty-prefix buckets, in x order. Trailing empty
    /// buckets cannot exist by construction; interior empty buckets are
    /// reported with `count == 0`.
    pub fn stats(&self) -> Vec<BucketStat> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, w)| BucketStat {
                lo: self.origin + i as f64 * self.width,
                hi: self.origin + (i + 1) as f64 * self.width,
                count: w.count(),
                mean: w.mean(),
                std: w.population_std(),
            })
            .collect()
    }

    /// Summaries up to (excluding) the first bucket with fewer than
    /// `min_count` pairs — the paper's "limit the x-axis range to the first
    /// bucket containing less than 50 machines" rule.
    pub fn stats_until_sparse(&self, min_count: u64) -> Vec<BucketStat> {
        let all = self.stats();
        let cut = all
            .iter()
            .position(|b| b.count < min_count)
            .unwrap_or(all.len());
        all.into_iter().take(cut).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_width() {
        assert!(Bucketed::new(0.0, 0.0).is_err());
        assert!(Bucketed::new(0.0, -1.0).is_err());
        assert!(Bucketed::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pairs_land_in_expected_buckets() {
        let mut b = Bucketed::new(0.0, 0.5).unwrap();
        b.extend([(0.1, 1.0), (0.4, 3.0), (0.6, 10.0)]);
        let stats = b.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].mean, 2.0);
        assert_eq!(stats[1].count, 1);
        assert_eq!(stats[1].mean, 10.0);
        assert_eq!(stats[0].mid(), 0.25);
    }

    #[test]
    fn below_origin_clamps() {
        let mut b = Bucketed::new(0.0, 1.0).unwrap();
        b.push(-5.0, 7.0);
        let stats = b.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[0].mean, 7.0);
    }

    #[test]
    fn boundary_goes_to_upper_bucket() {
        let mut b = Bucketed::new(0.0, 1.0).unwrap();
        b.push(1.0, 2.0);
        let stats = b.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].count, 0);
        assert_eq!(stats[1].count, 1);
    }

    #[test]
    fn sparse_cutoff_matches_paper_rule() {
        let mut b = Bucketed::new(0.0, 1.0).unwrap();
        // Bucket 0: 3 pairs, bucket 1: 1 pair, bucket 2: 3 pairs.
        for _ in 0..3 {
            b.push(0.5, 1.0);
        }
        b.push(1.5, 1.0);
        for _ in 0..3 {
            b.push(2.5, 1.0);
        }
        let kept = b.stats_until_sparse(2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].count, 3);
    }
}
