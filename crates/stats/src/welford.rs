//! Streaming mean / variance via Welford's online algorithm.

/// Numerically stable streaming accumulator for count, mean, variance,
/// minimum and maximum.
///
/// Welford's algorithm avoids the catastrophic cancellation that the naive
/// `E[x^2] - E[x]^2` formula suffers from when the mean is large relative to
/// the spread — exactly the regime of machine-level CPU usage series.
///
/// # Examples
///
/// ```
/// use oc_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds every observation in `xs`.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (Chan's parallel formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; `0.0` for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); `0.0` with fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); `0.0` with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_var(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
    }

    #[test]
    fn empty_is_safe() {
        let w = Welford::new();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn matches_naive_formula() {
        let xs = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let mut w = Welford::new();
        w.extend(xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - naive_var(&xs)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut left = Welford::new();
        left.extend(a);
        let mut right = Welford::new();
        right.extend(b);
        left.merge(&right);

        let mut seq = Welford::new();
        seq.extend(a.iter().chain(b.iter()).copied());
        assert_eq!(left.count(), seq.count());
        assert!((left.mean() - seq.mean()).abs() < 1e-12);
        assert!((left.population_variance() - seq.population_variance()).abs() < 1e-12);
        assert_eq!(left.min(), seq.min());
        assert_eq!(left.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.extend([5.0, 6.0]);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_under_large_offset() {
        // The naive formula loses all precision here; Welford must not.
        let offset = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| offset + (i % 10) as f64).collect();
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        assert!((w.population_variance() - naive_var(&xs)).abs() < 1e-6);
    }
}
