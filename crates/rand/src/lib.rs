//! Vendored offline stand-in for the subset of [`rand` 0.9] this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API surface it actually consumes: [`rngs::SmallRng`]
//! (xoshiro256++, the same algorithm real `rand` 0.9 uses for 64-bit
//! `SmallRng`), [`SeedableRng::seed_from_u64`] (SplitMix64 expansion, as
//! upstream), [`Rng::random`] for `f64`/`bool`, and [`Rng::random_range`]
//! over integer ranges.
//!
//! Determinism is the only contract the workspace relies on: every
//! generator is seeded explicitly and replayed, so as long as this crate is
//! stable the traces are stable. Statistical quality of xoshiro256++ is
//! far beyond what the workload generator needs.
//!
//! [`rand` 0.9]: https://docs.rs/rand/0.9

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed via SplitMix64 state expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Marker for types samplable uniformly from an RNG (the subset of the
/// `StandardUniform` distribution the workspace draws).
pub trait UniformSampled: Sized {
    /// Draws one uniformly distributed value.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSampled for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream convention).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSampled for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSampled for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 means the full u64 domain (lo = 0, hi = MAX).
                if span == 0 {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_uniform(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (`f64` in `[0, 1)`, fair `bool`).
    fn random<T: UniformSampled>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: the standard seed-expansion generator.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic RNG (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms is close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = r.random_range(2u32..=4);
            assert!((2..=4).contains(&v));
        }
        for _ in 0..200 {
            let v = r.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn random_bool_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
